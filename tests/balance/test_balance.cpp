// mimir-balance tests: the sketch's SpaceSaving guarantee and
// deterministic serialization, the planner's cross-run determinism and
// key->rank contract (audited the same way the shuffle's hash routing
// is), bit-identical job results with balance on vs off, race-free
// sampler/plan exchange under mimir-race, and clean recovery from
// crashes injected at the balance.plan / balance.merge phase points.
#include "balance/balancer.hpp"

#include <gtest/gtest.h>

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "balance/plan.hpp"
#include "balance/sketch.hpp"
#include "check/checker.hpp"
#include "inject/fault.hpp"
#include "mimir/containers.hpp"
#include "mimir/job.hpp"
#include "mimir/mimir.hpp"
#include "mimir/recovery.hpp"
#include "mimir/shuffle.hpp"
#include "mutil/config.hpp"
#include "mutil/error.hpp"
#include "mutil/hash.hpp"
#include "sched/graph.hpp"
#include "simmpi/runtime.hpp"
#include "stats/trace.hpp"

namespace {

using balance::Balancer;
using balance::KeyFreqSketch;
using balance::Options;
using balance::Plan;
using balance::PlanEntry;
using check::CheckConfig;
using check::JobChecker;
using check::Report;
using inject::FaultPlan;
using mimir::Emitter;
using mimir::Job;
using mimir::JobConfig;
using mimir::KVContainer;
using mimir::KVView;
using mimir::Shuffle;
using simmpi::Context;

CheckConfig race_config() {
  CheckConfig cfg;
  cfg.race = true;
  return cfg;
}

void sum_reduce(std::string_view key, mimir::ValueReader& values,
                Emitter& out) {
  std::uint64_t total = 0;
  std::string_view v;
  while (values.next(v)) total += mimir::as_u64(v);
  out.emit(key, total);
}

void sum_combine(std::string_view, std::string_view a, std::string_view b,
                 std::string& out) {
  out.assign(mimir::as_view(mimir::as_u64(a) + mimir::as_u64(b)));
}

/// Skewed workload: every rank hammers one hot key (plus a rank-spread
/// tail) so the hash fallback overloads the hot key's owner and the
/// planner has something to split.
void skewed_produce(int rank, Emitter& out) {
  for (int i = 0; i < 1200; ++i) out.emit("hot", std::uint64_t{1});
  for (int i = 0; i < 600; ++i) {
    out.emit("w" + std::to_string((i * 13 + rank) % 59), std::uint64_t{1});
  }
}

// --- sketch ---------------------------------------------------------------

TEST(BalanceSketch, HeavyHitterGuaranteeHolds) {
  // capacity 4 -> any key above total/4 bytes must surface.
  KeyFreqSketch sketch(4, 32, 2);
  for (int i = 0; i < 100; ++i) sketch.offer("hot", 100, 0);
  for (int i = 0; i < 400; ++i) {
    sketch.offer("t" + std::to_string(i % 97), 10, i % 2);
  }
  ASSERT_TRUE(sketch.heavy().contains("hot"));
  const auto& entry = sketch.heavy().find("hot")->second;
  // estimate - error <= true volume <= estimate.
  EXPECT_GE(entry.bytes, 100u * 100u);
  EXPECT_LE(entry.bytes - entry.error, 100u * 100u);
  EXPECT_EQ(sketch.total_bytes(), 100u * 100u + 400u * 10u);
  EXPECT_EQ(sketch.offered_kvs(), 500u);
  EXPECT_LE(sketch.heavy().size(), 4u);
}

TEST(BalanceSketch, DestBytesTrackFallbackRoutingExactly) {
  KeyFreqSketch sketch(8, 32, 3);
  sketch.offer("a", 5, 0);
  sketch.offer("b", 7, 2);
  sketch.offer("c", 11, 2);
  ASSERT_EQ(sketch.dest_bytes().size(), 3u);
  EXPECT_EQ(sketch.dest_bytes()[0], 5u);
  EXPECT_EQ(sketch.dest_bytes()[1], 0u);
  EXPECT_EQ(sketch.dest_bytes()[2], 18u);
}

TEST(BalanceSketch, SerializationRoundTripsBitIdentically) {
  KeyFreqSketch sketch(4, 16, 2);
  for (int i = 0; i < 300; ++i) {
    sketch.offer("k" + std::to_string(i % 23), 8 + i % 5, i % 2);
  }
  const auto blob = sketch.serialize();
  const KeyFreqSketch back = KeyFreqSketch::deserialize(blob);
  EXPECT_EQ(back.serialize(), blob);
  EXPECT_EQ(back.total_bytes(), sketch.total_bytes());
  EXPECT_EQ(back.offered_kvs(), sketch.offered_kvs());
  EXPECT_EQ(back.distinct_estimate(), sketch.distinct_estimate());
  EXPECT_EQ(back.heavy().size(), sketch.heavy().size());
}

TEST(BalanceSketch, DeserializeRejectsTruncatedBlob) {
  KeyFreqSketch sketch(4, 16, 2);
  sketch.offer("abc", 10, 0);
  auto blob = sketch.serialize();
  blob.resize(blob.size() - 3);
  EXPECT_THROW(KeyFreqSketch::deserialize(blob), mutil::UsageError);
  EXPECT_THROW(
      KeyFreqSketch::deserialize(std::span<const std::byte>(blob.data(), 2)),
      mutil::UsageError);
}

TEST(BalanceSketch, MergeSumsTotalsAndUnionsHeavyKeys) {
  KeyFreqSketch a(4, 16, 2);
  KeyFreqSketch b(4, 16, 2);
  for (int i = 0; i < 50; ++i) a.offer("hot", 10, 0);
  for (int i = 0; i < 60; ++i) b.offer("hot", 10, 0);
  for (int i = 0; i < 40; ++i) b.offer("warm", 10, 1);
  a.merge(b);
  EXPECT_EQ(a.total_bytes(), 1500u);
  EXPECT_EQ(a.offered_kvs(), 150u);
  EXPECT_EQ(a.dest_bytes()[0], 1100u);
  EXPECT_EQ(a.dest_bytes()[1], 400u);
  ASSERT_TRUE(a.heavy().contains("hot"));
  ASSERT_TRUE(a.heavy().contains("warm"));
  EXPECT_EQ(a.heavy().find("hot")->second.bytes, 1100u);
}

TEST(BalanceSketch, IdenticalStreamsSerializeIdentically) {
  const auto build = [] {
    KeyFreqSketch sketch(4, 16, 4);
    for (int i = 0; i < 500; ++i) {
      sketch.offer("k" + std::to_string((i * 31) % 41), 6 + i % 7, i % 4);
    }
    return sketch.serialize();
  };
  EXPECT_EQ(build(), build());
}

// --- planner --------------------------------------------------------------

KeyFreqSketch merged_skewed_sketch(int nranks) {
  KeyFreqSketch merged(16, 64, nranks);
  for (int r = 0; r < nranks; ++r) {
    KeyFreqSketch local(16, 64, nranks);
    for (int i = 0; i < 1000; ++i) {
      local.offer("hot", 12,
                  static_cast<int>(mutil::hash_bytes("hot") %
                                   static_cast<std::uint64_t>(nranks)));
    }
    for (int i = 0; i < 300; ++i) {
      const std::string key = "w" + std::to_string((i * 13 + r) % 59);
      local.offer(key, 12,
                  static_cast<int>(mutil::hash_bytes(key) %
                                   static_cast<std::uint64_t>(nranks)));
    }
    merged.merge(local);
  }
  return merged;
}

TEST(BalancePlan, RepeatedBuildsProduceIdenticalPlans) {
  Options opts;
  opts.enabled = true;
  const KeyFreqSketch merged = merged_skewed_sketch(4);
  const Plan first = balance::build_plan(merged, 4, opts);
  ASSERT_FALSE(first.empty());
  for (int run = 0; run < 3; ++run) {
    const Plan again =
        balance::build_plan(merged_skewed_sketch(4), 4, opts);
    EXPECT_EQ(again.fingerprint(), first.fingerprint());
    EXPECT_EQ(again.size(), first.size());
    EXPECT_EQ(again.split_keys(), first.split_keys());
  }
}

TEST(BalancePlan, KeyToRankContractHoldsAcrossRankCounts) {
  Options opts;
  opts.enabled = true;
  for (const int nranks : {2, 4, 8}) {
    const Plan plan =
        balance::build_plan(merged_skewed_sketch(nranks), nranks, opts);
    ASSERT_FALSE(plan.empty()) << nranks << " ranks";
    for (const auto& [key, entry] : plan.entries()) {
      ASSERT_FALSE(entry.ranks.empty());
      std::vector<char> seen(static_cast<std::size_t>(nranks), 0);
      for (const int r : entry.ranks) {
        ASSERT_GE(r, 0) << key;
        ASSERT_LT(r, nranks) << key;
        EXPECT_FALSE(seen[static_cast<std::size_t>(r)])
            << "duplicate share rank for " << key;
        seen[static_cast<std::size_t>(r)] = 1;
      }
      // Every sender's routed destination stays in range and inside
      // the entry's share set.
      for (int sender = 0; sender < nranks; ++sender) {
        const int dest = plan.route(key, /*fallback=*/-1, sender);
        EXPECT_GE(dest, 0);
        EXPECT_LT(dest, nranks);
      }
    }
    // Tail keys fall back to the partitioner destination.
    EXPECT_EQ(plan.route("definitely-not-planned", 1, 0), 1);
  }
}

TEST(BalancePlan, SplitKeySpreadsSendersOverShares) {
  Options opts;
  opts.enabled = true;
  opts.max_splits = 4;
  const Plan plan = balance::build_plan(merged_skewed_sketch(8), 8, opts);
  ASSERT_TRUE(plan.planned("hot"));
  const auto& shares = plan.entries().find("hot")->second.ranks;
  ASSERT_GT(shares.size(), 1u);  // the hot key dwarfs the target
  EXPECT_LE(shares.size(), opts.max_splits);
  // Round-robin over senders touches every share.
  std::vector<char> hit(8, 0);
  for (int sender = 0; sender < 8; ++sender) {
    hit[static_cast<std::size_t>(plan.route("hot", -1, sender))] = 1;
  }
  for (const int r : shares) {
    EXPECT_TRUE(hit[static_cast<std::size_t>(r)]);
  }
}

TEST(BalancePlan, HashAlignedSingletonIsDropped) {
  // One heavy key, no tail, splitting disabled: the greedy packer puts
  // it on the least-loaded rank. When that is also its hash home the
  // entry must be dropped (routing would not change).
  Options opts;
  opts.enabled = true;
  opts.allow_split = false;
  std::string key = "k0";
  for (int i = 1; mutil::hash_bytes(key) % 2 != 0; ++i) {
    key = "k" + std::to_string(i);  // find a key whose hash home is 0
  }
  KeyFreqSketch merged(4, 16, 2);
  for (int i = 0; i < 100; ++i) {
    merged.offer(key, 10, static_cast<int>(mutil::hash_bytes(key) % 2));
  }
  const Plan plan = balance::build_plan(merged, 2, opts);
  EXPECT_TRUE(plan.empty());
}

TEST(BalancePlan, DegenerateInputsYieldEmptyPlans) {
  Options opts;
  opts.enabled = true;
  EXPECT_TRUE(balance::build_plan(KeyFreqSketch(4, 16, 1), 1, opts).empty());
  EXPECT_TRUE(
      balance::build_plan(merged_skewed_sketch(4), 1, opts).empty());
  EXPECT_TRUE(balance::build_plan(KeyFreqSketch(4, 16, 4), 4, opts).empty());
}

TEST(BalanceOptions, ConfigKeysParseAndValidate) {
  const auto cfg = mutil::Config::from_args(
      {"mimir.balance=1", "mimir.balance.sketch_capacity=16",
       "mimir.balance.reservoir_capacity=32", "mimir.balance.split=0",
       "mimir.balance.max_splits=2", "mimir.balance.split_threshold=2.5"});
  const Options opts = Options::from(cfg);
  EXPECT_TRUE(opts.enabled);
  EXPECT_EQ(opts.sketch_capacity, 16u);
  EXPECT_EQ(opts.reservoir_capacity, 32u);
  EXPECT_FALSE(opts.allow_split);
  EXPECT_EQ(opts.max_splits, 2u);
  EXPECT_DOUBLE_EQ(opts.split_threshold, 2.5);

  EXPECT_FALSE(Options::from(mutil::Config{}).enabled);
  EXPECT_THROW(Options::from(mutil::Config::from_args(
                   {"mimir.balance.sketch_capacity=0"})),
               mutil::ConfigError);
  EXPECT_THROW(
      Options::from(mutil::Config::from_args({"mimir.balance.max_splits=0"})),
      mutil::ConfigError);
  EXPECT_THROW(Options::from(mutil::Config::from_args(
                   {"mimir.balance.split_threshold=0"})),
               mutil::ConfigError);
}

TEST(BalanceOptions, SchedGraphKnobMapsToTriState) {
  sched::GraphOptions def = sched::GraphOptions::from(mutil::Config{});
  EXPECT_EQ(def.balance, -1);  // absent: inherit per-job configs
  sched::GraphOptions on = sched::GraphOptions::from(
      mutil::Config::from_args({"mimir.sched.balance=1"}));
  EXPECT_EQ(on.balance, 1);
  sched::GraphOptions off = sched::GraphOptions::from(
      mutil::Config::from_args({"mimir.sched.balance=0"}));
  EXPECT_EQ(off.balance, 0);
}

// --- balancer + shuffle ---------------------------------------------------

TEST(BalancerShuffle, PlanInstallsOnceAndObserverSeesOnePlanPerRank) {
  constexpr int kRanks = 4;
  std::mutex mutex;
  std::vector<std::uint64_t> fingerprints;
  simmpi::run_test(kRanks, [&](Context& ctx) {
    Options opts;
    opts.enabled = true;
    Balancer balancer(opts, ctx.size());
    balancer.on_plan = [&](const Plan& plan) {
      const std::scoped_lock lock(mutex);
      fingerprints.push_back(plan.fingerprint());
    };
    KVContainer dest(ctx.tracker, 4096);
    Shuffle shuffle(ctx, 1024, {}, dest, {}, false, &balancer);
    constexpr std::uint64_t kOne = 1;
    for (int i = 0; i < 1500; ++i) {
      shuffle.emit("hot", mimir::as_view(kOne));
    }
    for (int i = 0; i < 300; ++i) {
      shuffle.emit("w" + std::to_string((i * 13 + ctx.rank()) % 59),
                   mimir::as_view(kOne));
    }
    shuffle.finalize();
    EXPECT_TRUE(balancer.planned());
    EXPECT_FALSE(balancer.plan().empty());
    // Received keys are either hash-owned or a planned share of ours.
    dest.scan([&](const KVView& kv) {
      const bool hash_owned =
          mutil::hash_bytes(kv.key) %
              static_cast<std::uint64_t>(ctx.size()) ==
          static_cast<std::uint64_t>(ctx.rank());
      EXPECT_TRUE(hash_owned || balancer.is_planned_key(kv.key))
          << std::string(kv.key);
    });
    const auto total =
        ctx.comm.allreduce_u64(dest.num_kvs(), simmpi::Op::kSum);
    EXPECT_EQ(total, (1500u + 300u) * kRanks);
  });
  // One install per rank, all with the identical plan.
  ASSERT_EQ(fingerprints.size(), static_cast<std::size_t>(kRanks));
  for (const std::uint64_t fp : fingerprints) {
    EXPECT_EQ(fp, fingerprints[0]);
  }
}

TEST(BalancerShuffle, OverlappedShuffleExchangesThePlanToo) {
  simmpi::run_test(4, [](Context& ctx) {
    Options opts;
    opts.enabled = true;
    Balancer balancer(opts, ctx.size());
    KVContainer dest(ctx.tracker, 4096);
    Shuffle shuffle(ctx, 1024, {}, dest, {}, /*overlap=*/true, &balancer);
    constexpr std::uint64_t kOne = 1;
    for (int i = 0; i < 1500; ++i) {
      shuffle.emit("hot", mimir::as_view(kOne));
    }
    shuffle.finalize();
    EXPECT_TRUE(balancer.planned());
    const auto total =
        ctx.comm.allreduce_u64(dest.num_kvs(), simmpi::Op::kSum);
    EXPECT_EQ(total, 1500u * 4u);
  });
}

// --- whole-job bit-identity and placement ---------------------------------

/// Run the skewed workload through a full map+reduce job and merge the
/// output across ranks; optionally audits intermediate placement and
/// collects the per-rank plan fingerprints.
std::map<std::string, std::uint64_t> run_skewed_job(
    int nranks, bool balance_on, bool with_combiner,
    std::vector<std::uint64_t>* plan_fps = nullptr,
    stats::Collector* collector = nullptr, check::JobChecker* checker = nullptr) {
  std::mutex mutex;
  std::map<std::string, std::uint64_t> counts;
  simmpi::run_test(
      nranks,
      [&](Context& ctx) {
        JobConfig cfg;
        cfg.page_size = 4096;
        cfg.comm_buffer = 1024;  // small: several exchange rounds
        cfg.balance.enabled = balance_on;
        Job job(ctx, cfg);
        const int rank = ctx.rank();
        const auto produce = [rank](Emitter& out) {
          skewed_produce(rank, out);
        };
        if (with_combiner) {
          job.map_custom(produce, sum_combine);
        } else {
          job.map_custom(produce);
        }
        // Placement contract: the merge pass re-homes planned keys, so
        // intermediate placement matches hash routing exactly — the
        // same audit the plain shuffle passes.
        job.intermediate().scan([&](const KVView& kv) {
          EXPECT_EQ(mutil::hash_bytes(kv.key) %
                        static_cast<std::uint64_t>(ctx.size()),
                    static_cast<std::uint64_t>(ctx.rank()))
              << std::string(kv.key);
        });
        if (balance_on) {
          ASSERT_NE(job.balancer(), nullptr);
          EXPECT_TRUE(job.balancer()->planned());
          if (plan_fps != nullptr) {
            const std::scoped_lock lock(mutex);
            plan_fps->push_back(job.balancer()->plan().fingerprint());
          }
        } else {
          EXPECT_EQ(job.balancer(), nullptr);
        }
        job.reduce(sum_reduce);
        std::map<std::string, std::uint64_t> mine;
        job.output().scan([&](const KVView& kv) {
          mine[std::string(kv.key)] += mimir::as_u64(kv.value);
        });
        const std::scoped_lock lock(mutex);
        for (const auto& [key, value] : mine) counts[key] += value;
      },
      collector, checker);
  return counts;
}

class BalanceBitIdentity : public ::testing::TestWithParam<int> {};

TEST_P(BalanceBitIdentity, ResultsMatchHashRoutingAcrossRankCounts) {
  const int nranks = GetParam();
  for (const bool with_combiner : {false, true}) {
    const auto baseline = run_skewed_job(nranks, false, with_combiner);
    std::vector<std::uint64_t> fps;
    const auto balanced = run_skewed_job(nranks, true, with_combiner, &fps);
    EXPECT_EQ(balanced, baseline) << nranks << " ranks, combiner="
                                  << with_combiner;
    EXPECT_EQ(baseline.at("hot"),
              1200u * static_cast<std::uint64_t>(nranks));
    // All ranks installed the identical plan.
    ASSERT_EQ(fps.size(), static_cast<std::size_t>(nranks));
    for (const std::uint64_t fp : fps) EXPECT_EQ(fp, fps[0]);
  }
}

INSTANTIATE_TEST_SUITE_P(Ranks, BalanceBitIdentity,
                         ::testing::Values(2, 4, 8));

TEST(BalanceJob, PlansAreIdenticalAcrossRepeatedRuns) {
  std::vector<std::uint64_t> first;
  std::vector<std::uint64_t> second;
  run_skewed_job(4, true, true, &first);
  run_skewed_job(4, true, true, &second);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(BalanceJob, CountersAndImbalanceLandInTheSummary) {
  stats::Collector collector;
  std::vector<std::uint64_t> fps;
  run_skewed_job(4, true, true, &fps, &collector);
  const stats::Summary summary = collector.summary();
  EXPECT_GT(summary.counters.at("balance.sampled_kvs"), 0u);
  EXPECT_GT(summary.counters.at("balance.plan_keys"), 0u);
  EXPECT_GT(summary.counters.at("balance.merge_kvs"), 0u);
  ASSERT_EQ(summary.recv_per_rank.size(), 4u);
  std::uint64_t recv_total = 0;
  for (const std::uint64_t r : summary.recv_per_rank) recv_total += r;
  EXPECT_GT(recv_total, 0u);
  EXPECT_GE(summary.recv_imbalance, 1.0);
}

// --- mimir-race -----------------------------------------------------------

TEST(BalanceRace, SamplerAndPlanExchangeAreRaceFree) {
  Report report;
  JobChecker checker(report, race_config());
  const auto counts = run_skewed_job(4, true, true, nullptr, nullptr,
                                     &checker);
  EXPECT_TRUE(report.empty()) << report.text();
  EXPECT_EQ(counts.at("hot"), 1200u * 4u);
}

TEST(BalanceRace, DeterminismDigestsMatchAcrossRuns) {
  Report report_a;
  JobChecker checker_a(report_a, race_config());
  run_skewed_job(4, true, false, nullptr, nullptr, &checker_a);
  const check::DeterminismDigest first = check::determinism_digest(checker_a);

  Report report_b;
  JobChecker checker_b(report_b, race_config());
  run_skewed_job(4, true, false, nullptr, nullptr, &checker_b);
  const check::DeterminismDigest second = check::determinism_digest(checker_b);

  EXPECT_TRUE(report_a.empty()) << report_a.text();
  EXPECT_TRUE(report_b.empty()) << report_b.text();
  EXPECT_EQ(check::compare_digests(first, second), std::nullopt);
}

// --- fault injection + recovery -------------------------------------------

constexpr int kRecoveryRanks = 3;

struct OutputSink {
  std::mutex mutex;
  std::map<int, std::map<std::string, std::uint64_t>> by_rank;

  void take(Job& job) {
    std::map<std::string, std::uint64_t> mine;
    job.output().scan([&](const KVView& kv) {
      mine[std::string(kv.key)] += mimir::as_u64(kv.value);
    });
    const std::scoped_lock lock(mutex);
    by_rank[job.context().rank()] = std::move(mine);
  }
  std::map<std::string, std::uint64_t> merged() const {
    std::map<std::string, std::uint64_t> all;
    for (const auto& [rank, kvs] : by_rank) {
      for (const auto& [key, value] : kvs) all[key] += value;
    }
    return all;
  }
};

mimir::RecoveryJob balanced_job(OutputSink& sink) {
  mimir::RecoveryJob spec;
  JobConfig cfg;
  cfg.page_size = 4096;
  cfg.comm_buffer = 1024;
  cfg.balance.enabled = true;
  spec.config = cfg;
  spec.map = [](Job& job) {
    const int rank = job.context().rank();
    job.map_custom([rank](Emitter& out) { skewed_produce(rank, out); },
                   sum_combine);
  };
  spec.finish = [&sink](Job& job) {
    job.reduce(sum_reduce);
    sink.take(job);
  };
  return spec;
}

simtime::MachineProfile profile_with_io() {
  auto machine = simtime::MachineProfile::test_profile();
  machine.pfs_latency = 1e-3;
  machine.pfs_bandwidth = 1e6;
  machine.pfs_client_bandwidth = 1e6;
  return machine;
}

class BalanceRecovery : public ::testing::TestWithParam<const char*> {};

TEST_P(BalanceRecovery, CrashAtBalancePhaseRetriesToIdenticalResults) {
  const auto machine = profile_with_io();
  const FaultPlan plan = FaultPlan::parse(GetParam());

  // Reference: same balanced job, no faults.
  OutputSink expected;
  {
    pfs::FileSystem fs(machine, kRecoveryRanks);
    const auto out = mimir::run_with_recovery(kRecoveryRanks, machine, fs,
                                              balanced_job(expected));
    EXPECT_EQ(out.attempts, 1);
  }

  OutputSink sink;
  pfs::FileSystem fs(machine, kRecoveryRanks);
  const mimir::RecoveryOutcome out = mimir::run_with_recovery(
      kRecoveryRanks, machine, fs, balanced_job(sink), {}, &plan);
  // Both balance phase points sit inside the map, before the post-map
  // checkpoint: the retry restarts the map from scratch.
  EXPECT_EQ(out.attempts, 2);
  EXPECT_FALSE(out.resumed);
  ASSERT_EQ(out.history.size(), 2u);
  EXPECT_FALSE(out.history[0].ok);
  EXPECT_TRUE(out.history[1].ok);
  EXPECT_EQ(sink.merged(), expected.merged());
  EXPECT_EQ(sink.merged().at("hot"),
            1200u * static_cast<std::uint64_t>(kRecoveryRanks));
}

INSTANTIATE_TEST_SUITE_P(Phases, BalanceRecovery,
                         ::testing::Values("rank_crash:1@balance.plan",
                                           "rank_crash:2@balance.merge"));

TEST(BalanceRecovery, FaultFreeInjectionKeepsResultsIdentical) {
  // An armed injector with no matching clause must not perturb the
  // balanced job (the inject layer's bit-identity contract).
  const auto machine = profile_with_io();
  OutputSink plain;
  {
    pfs::FileSystem fs(machine, kRecoveryRanks);
    (void)mimir::run_with_recovery(kRecoveryRanks, machine, fs,
                                   balanced_job(plain));
  }
  const FaultPlan plan = FaultPlan::parse("rank_crash:1@nonexistent_phase");
  OutputSink armed;
  pfs::FileSystem fs(machine, kRecoveryRanks);
  const auto out = mimir::run_with_recovery(kRecoveryRanks, machine, fs,
                                            balanced_job(armed), {}, &plan);
  EXPECT_EQ(out.attempts, 1);
  EXPECT_EQ(armed.merged(), plain.merged());
}

}  // namespace
