// Negative tests for the mimir-check analyzers: each seeds one classic
// bug (mismatched collectives, pairwise alltoallv disagreement, a
// send/recv deadlock cycle, a leaked container page) and asserts the
// check::Report names the faulty ranks and phase. The equivalence test
// pins the checker's core guarantee: simulated results are bit-identical
// with checking on or off.
#include "check/checker.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

// The leak test allocates a container it never frees; hide it from
// LeakSanitizer when the suite is built with MIMIR_SANITIZE=address.
#if defined(__SANITIZE_ADDRESS__)
#define MIMIR_HAVE_LSAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define MIMIR_HAVE_LSAN 1
#endif
#endif
#ifdef MIMIR_HAVE_LSAN
#include <sanitizer/lsan_interface.h>
#endif

#include "mimir/job.hpp"
#include "mutil/config.hpp"
#include "mutil/error.hpp"
#include "simmpi/runtime.hpp"
#include "stats/registry.hpp"

namespace {

using check::CheckConfig;
using check::Diagnostic;
using check::JobChecker;
using check::Report;
using simmpi::Context;

std::span<const std::byte> as_bytes(const std::string& s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

// --- Report unit tests ----------------------------------------------------

TEST(CheckReport, TextNamesSeverityAnalyzerRanksAndPhase) {
  Report report;
  Diagnostic d;
  d.severity = check::Severity::kError;
  d.analyzer = "collective";
  d.code = "collective-mismatch";
  d.message = "rank 3 entered barrier";
  d.ranks = {1, 3};
  d.phase = "map/aggregate";
  report.add(d);

  const std::string text = report.text();
  EXPECT_NE(text.find("[error][collective][collective-mismatch]"),
            std::string::npos);
  EXPECT_NE(text.find("ranks 1,3"), std::string::npos);
  EXPECT_NE(text.find("(phase map/aggregate)"), std::string::npos);
  EXPECT_EQ(report.errors(), 1u);
  EXPECT_EQ(report.warnings(), 0u);
  EXPECT_EQ(report.count("collective-mismatch"), 1u);
  EXPECT_TRUE(report.first("no-such-code").code.empty());
}

TEST(CheckReport, JsonEscapesAndCounts) {
  Report report;
  Diagnostic d;
  d.severity = check::Severity::kWarning;
  d.analyzer = "lifecycle";
  d.code = "page-leak";
  d.message = "phase \"map\" leaked";
  d.ranks = {2};
  report.add(d);

  const std::string json = report.json();
  EXPECT_NE(json.find("\"code\":\"page-leak\""), std::string::npos);
  EXPECT_NE(json.find("phase \\\"map\\\" leaked"), std::string::npos);
  EXPECT_NE(json.find("\"ranks\":[2]"), std::string::npos);
  EXPECT_NE(json.find("\"errors\":0"), std::string::npos);
  EXPECT_NE(json.find("\"warnings\":1"), std::string::npos);
}

TEST(CheckConfigTest, ReadsConfigKeys) {
  mutil::Config cfg;
  cfg.set("mimir.check.watchdog_ms", "50");
  cfg.set("mimir.check.stalls", "5");
  const CheckConfig out = CheckConfig::from(cfg);
  EXPECT_EQ(out.watchdog_interval_ms, 50);
  EXPECT_EQ(out.watchdog_stalls, 5);
}

// --- collective-matching verifier -----------------------------------------

TEST(CheckCollective, DivergentRankIsNamed) {
  Report report;
  JobChecker checker(report);
  EXPECT_THROW(
      simmpi::run_test(
          4,
          [](Context& ctx) {
            if (ctx.rank() == 2) {
              ctx.comm.allreduce_i64(1, simmpi::Op::kSum);
            } else {
              ctx.comm.barrier();
            }
          },
          nullptr, &checker),
      mutil::CommError);

  ASSERT_EQ(report.count("collective-mismatch"), 1u);
  const Diagnostic d = report.first("collective-mismatch");
  EXPECT_EQ(d.ranks, std::vector<int>{2});
  EXPECT_NE(d.message.find("allreduce_i64"), std::string::npos);
  EXPECT_NE(d.message.find("barrier"), std::string::npos);
}

TEST(CheckCollective, ReorderedCollectivesAreAMismatch) {
  // Rank 0 runs the same collectives in the opposite order; the first
  // rendezvous pairs its allreduce against everyone else's barrier.
  Report report;
  JobChecker checker(report);
  EXPECT_THROW(
      simmpi::run_test(
          3,
          [](Context& ctx) {
            if (ctx.rank() == 0) {
              ctx.comm.allreduce_u64(1, simmpi::Op::kSum);
              ctx.comm.barrier();
            } else {
              ctx.comm.barrier();
              ctx.comm.allreduce_u64(1, simmpi::Op::kSum);
            }
          },
          nullptr, &checker),
      mutil::CommError);
  ASSERT_GE(report.count("collective-mismatch"), 1u);
  EXPECT_EQ(report.first("collective-mismatch").ranks, std::vector<int>{0});
}

TEST(CheckCollective, AlltoallvPairwiseCountMismatchNamesBothRanks) {
  Report report;
  JobChecker checker(report);
  EXPECT_THROW(
      simmpi::run_test(
          2,
          [](Context& ctx) {
            // Rank 1 advertises 8 bytes for rank 0, but rank 0 only
            // expects 4 — the classic sendcounts/recvcounts skew.
            const bool skewed = ctx.rank() == 1;
            const std::vector<std::uint64_t> send_counts =
                skewed ? std::vector<std::uint64_t>{8, 4}
                       : std::vector<std::uint64_t>{4, 4};
            const std::vector<std::uint64_t> send_displs =
                skewed ? std::vector<std::uint64_t>{0, 8}
                       : std::vector<std::uint64_t>{0, 4};
            const std::vector<std::uint64_t> recv_counts{4, 4};
            const std::vector<std::uint64_t> recv_displs{0, 4};
            const std::vector<std::byte> send(12);
            std::vector<std::byte> recv(8);
            ctx.comm.alltoallv(send, send_counts, send_displs, recv,
                               recv_counts, recv_displs);
          },
          nullptr, &checker),
      mutil::CommError);

  ASSERT_GE(report.count("alltoallv-count-mismatch"), 1u);
  const Diagnostic d = report.first("alltoallv-count-mismatch");
  std::vector<int> ranks = d.ranks;
  std::sort(ranks.begin(), ranks.end());
  EXPECT_EQ(ranks, (std::vector<int>{0, 1}));
  EXPECT_NE(d.message.find("sendcounts[0] = 8"), std::string::npos);
  EXPECT_NE(d.message.find("recvcounts[1] = 4"), std::string::npos);
}

TEST(CheckCollective, UndersizedRecvBufferIsALocalBoundsError) {
  Report report;
  JobChecker checker(report);
  EXPECT_THROW(
      simmpi::run_test(
          2,
          [](Context& ctx) {
            const std::vector<std::uint64_t> counts{4, 4};
            const std::vector<std::uint64_t> displs{0, 4};
            const std::vector<std::byte> send(8);
            // recv buffer is 5 bytes but the counts promise 8.
            std::vector<std::byte> recv(5);
            ctx.comm.alltoallv(send, counts, displs, recv, counts, displs);
          },
          nullptr, &checker),
      mutil::CommError);

  ASSERT_GE(report.count("alltoallv-local-bounds"), 1u);
  const Diagnostic d = report.first("alltoallv-local-bounds");
  EXPECT_EQ(d.ranks.size(), 1u);
  EXPECT_NE(d.message.find("exceeds the recv buffer"), std::string::npos);
}

// --- progress watchdog ----------------------------------------------------

CheckConfig fast_watchdog() {
  CheckConfig cfg;
  cfg.watchdog_interval_ms = 20;
  cfg.watchdog_stalls = 2;
  return cfg;
}

TEST(CheckDeadlock, RecvCycleIsDetectedAndAborted) {
  Report report;
  JobChecker checker(report, fast_watchdog());
  try {
    simmpi::run_test(
        2,
        [](Context& ctx) {
          // Classic two-rank cycle: each rank waits for a message the
          // other never sends.
          ctx.comm.recv(1 - ctx.rank(), 7);
        },
        nullptr, &checker);
    FAIL() << "deadlocked job returned";
  } catch (const mutil::CommError& e) {
    EXPECT_NE(std::string(e.what()).find("deadlock"), std::string::npos);
  }

  ASSERT_EQ(report.count("deadlock"), 1u);
  const Diagnostic d = report.first("deadlock");
  std::vector<int> ranks = d.ranks;
  std::sort(ranks.begin(), ranks.end());
  EXPECT_EQ(ranks, (std::vector<int>{0, 1}));
  EXPECT_NE(d.message.find("recv"), std::string::npos);
  EXPECT_NE(d.message.find("wait-for cycle"), std::string::npos);
}

TEST(CheckDeadlock, FinishedRankLeavesCollectiveHanging) {
  Report report;
  JobChecker checker(report, fast_watchdog());
  EXPECT_THROW(
      simmpi::run_test(
          2,
          [](Context& ctx) {
            if (ctx.rank() == 1) ctx.comm.barrier();  // rank 0 already left
          },
          nullptr, &checker),
      mutil::CommError);

  ASSERT_EQ(report.count("deadlock"), 1u);
  const Diagnostic d = report.first("deadlock");
  EXPECT_EQ(d.ranks, std::vector<int>{1});
  EXPECT_NE(d.message.find("rank 0: finished"), std::string::npos);
}

TEST(CheckDeadlock, HealthyJobRaisesNoFalsePositives) {
  Report report;
  JobChecker checker(report, fast_watchdog());
  simmpi::run_test(
      4,
      [](Context& ctx) {
        for (int i = 0; i < 50; ++i) {
          ctx.comm.barrier();
          if (ctx.rank() == 0) {
            const std::string ping = "ping";
            ctx.comm.send(1, i, as_bytes(ping));
          } else if (ctx.rank() == 1) {
            ctx.comm.recv(0, i);
          }
          ctx.comm.allreduce_u64(1, simmpi::Op::kSum);
        }
      },
      nullptr, &checker);
  EXPECT_TRUE(report.empty()) << report.text();
}

// --- lifecycle auditor ----------------------------------------------------

TEST(CheckLifecycle, LeakedContainerPageIsReportedWithPhase) {
  Report report;
  JobChecker checker(report);
  simmpi::run_test(
      2,
      [](Context& ctx) {
        if (ctx.rank() != 0) return;
        const stats::PhaseScope phase("map");
        // Deliberate permanent leak: the container (and its tracked
        // page) must outlive the job's Tracker, so it is never deleted.
#ifdef MIMIR_HAVE_LSAN
        __lsan_disable();
#endif
        auto* leaked = new mimir::KVContainer(ctx.tracker, 1024);
#ifdef MIMIR_HAVE_LSAN
        __lsan_enable();
#endif
        leaked->append("key", "value");
      },
      nullptr, &checker);

  ASSERT_EQ(report.count("page-leak"), 1u);
  const Diagnostic d = report.first("page-leak");
  EXPECT_EQ(d.ranks, std::vector<int>{0});
  EXPECT_EQ(d.phase, "map");
  EXPECT_NE(d.message.find("phase 'map'"), std::string::npos);
}

TEST(CheckLifecycle, CleanJobAuditsClean) {
  Report report;
  JobChecker checker(report);
  simmpi::run_test(
      2,
      [](Context& ctx) {
        mimir::KVContainer kvc(ctx.tracker, 1024);
        for (int i = 0; i < 100; ++i) {
          kvc.append("key" + std::to_string(i), "value");
        }
        kvc.clear();
      },
      nullptr, &checker);
  EXPECT_TRUE(report.empty()) << report.text();
}

TEST(CheckLifecycle, DoubleReleaseDrivesBalanceNegative) {
  Report report;
  check::LifecycleAuditor auditor(report, 3);
  auditor.on_charge(128);
  auditor.on_release(128);
  auditor.on_release(64);  // released more than ever charged

  ASSERT_EQ(report.count("tracker-double-release"), 1u);
  EXPECT_EQ(report.first("tracker-double-release").ranks,
            std::vector<int>{3});
  // Reported once, not per release.
  auditor.on_release(8);
  EXPECT_EQ(report.count("tracker-double-release"), 1u);
}

TEST(CheckLifecycle, UnknownPageReleaseIsIgnored) {
  Report report;
  check::LifecycleAuditor auditor(report, 0);
  const int dummy = 0;
  auditor.on_page_release(&dummy, 64);  // allocated before binding
  EXPECT_TRUE(report.empty());
  EXPECT_EQ(auditor.live_pages(), 0u);
}

// --- checker equivalence --------------------------------------------------

void wordish_job(Context& ctx) {
  mimir::Job job(ctx, {});
  job.map_custom([&](mimir::Emitter& out) {
    for (int i = 0; i < 300; ++i) {
      out.emit("key" + std::to_string((i * 7 + ctx.rank()) % 37),
               "v" + std::to_string(i % 5));
    }
  });
  job.reduce([](std::string_view key, mimir::ValueReader& values,
                mimir::Emitter& out) {
    std::uint64_t n = 0;
    std::string_view v;
    while (values.next(v)) ++n;
    out.emit(key, std::to_string(n));
  });
  ctx.comm.clock_sync();
}

TEST(CheckEquivalence, SimulatedResultsAreBitIdenticalWithCheckerOn) {
  const auto plain = simmpi::run_test(4, wordish_job);

  Report report;
  JobChecker checker(report);
  const auto checked = simmpi::run_test(4, wordish_job, nullptr, &checker);

  EXPECT_TRUE(report.empty()) << report.text();
  // Exact equality on purpose: the analyzers must never advance a
  // simulated clock or charge a tracker.
  EXPECT_EQ(plain.sim_time, checked.sim_time);
  EXPECT_EQ(plain.node_peak, checked.node_peak);
  EXPECT_EQ(plain.node_peaks, checked.node_peaks);
  EXPECT_EQ(plain.shuffle_bytes, checked.shuffle_bytes);
  EXPECT_EQ(plain.io.bytes_read, checked.io.bytes_read);
  EXPECT_EQ(plain.io.bytes_written, checked.io.bytes_written);
}

TEST(CheckEquivalence, SplitJobsVerifyCleanAndStayIdentical) {
  const auto workload = [](Context& ctx) {
    auto sub = ctx.comm.split(ctx.rank() % 2, ctx.rank());
    sub->allreduce_u64(static_cast<std::uint64_t>(ctx.rank()),
                       simmpi::Op::kSum);
    sub->barrier();
    ctx.comm.barrier();
  };
  const auto plain = simmpi::run_test(4, workload);

  Report report;
  JobChecker checker(report);
  const auto checked = simmpi::run_test(4, workload, nullptr, &checker);

  EXPECT_TRUE(report.empty()) << report.text();
  EXPECT_EQ(plain.sim_time, checked.sim_time);
}

TEST(CheckCollective, SplitChildDiagnosticsNameGlobalRanks) {
  Report report;
  JobChecker checker(report);
  EXPECT_THROW(
      simmpi::run_test(
          4,
          [](Context& ctx) {
            // Ranks {2, 3} form the color-1 child; global rank 3 (child
            // rank 1) enters the wrong collective inside it.
            auto sub = ctx.comm.split(ctx.rank() / 2, ctx.rank());
            if (ctx.rank() == 3) {
              sub->barrier();
            } else {
              sub->allreduce_u64(1, simmpi::Op::kSum);
            }
          },
          nullptr, &checker),
      mutil::CommError);

  ASSERT_GE(report.count("collective-mismatch"), 1u);
  const Diagnostic d = report.first("collective-mismatch");
  EXPECT_EQ(d.ranks, std::vector<int>{3});
}

// --- enablement -----------------------------------------------------------

TEST(CheckEnv, EnvFlagParsing) {
  ASSERT_EQ(setenv("MIMIR_CHECK", "1", 1), 0);
  EXPECT_TRUE(check::env_enabled());
  ASSERT_EQ(setenv("MIMIR_CHECK", "off", 1), 0);
  EXPECT_FALSE(check::env_enabled());
  ASSERT_EQ(setenv("MIMIR_CHECK", "yes", 1), 0);
  EXPECT_TRUE(check::env_enabled());
  ASSERT_EQ(unsetenv("MIMIR_CHECK"), 0);
  EXPECT_FALSE(check::env_enabled());
}

}  // namespace
