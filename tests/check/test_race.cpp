// mimir-race tests: the happens-before engine unit-checked in isolation
// (deterministic clocks and access sites), the annotation API exercised
// through real rank threads (barrier / p2p / sched-handoff ordered
// accesses are race-free, unordered ones are reported with both sites'
// rank, phase, and sim-time), the PR-2 shared-capture regression, the
// bit-identity guarantee (results identical with the detector on or
// off, composed with sched graphs and fault-injected recovery), and the
// cross-run determinism digest.
#include "check/race.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "check/checker.hpp"
#include "inject/fault.hpp"
#include "memtrack/tracker.hpp"
#include "mimir/job.hpp"
#include "mutil/config.hpp"
#include "sched/scheduler.hpp"
#include "simmpi/runtime.hpp"
#include "stats/registry.hpp"

namespace {

using check::CheckConfig;
using check::DeterminismDigest;
using check::Diagnostic;
using check::DigestEntry;
using check::JobChecker;
using check::RaceDetector;
using check::Report;
using check::VectorClock;
using sched::Graph;
using sched::GraphOptions;
using sched::JobNode;
using sched::NodeCtx;
using simmpi::Context;

CheckConfig race_config() {
  CheckConfig cfg;
  cfg.race = true;
  return cfg;
}

std::span<const std::byte> as_bytes(const std::string& s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

std::string_view u64_view(const std::uint64_t& v) {
  return {reinterpret_cast<const char*>(&v), 8};
}

// --- vector clock ---------------------------------------------------------

TEST(RaceVectorClock, JoinIsPairwiseMaxAndTickIsPerComponent) {
  VectorClock a(3);
  VectorClock b(3);
  a.tick(0);
  a.tick(0);
  b.tick(1);
  b.join(a);
  EXPECT_EQ(b[0], 2u);
  EXPECT_EQ(b[1], 1u);
  EXPECT_EQ(b[2], 0u);
  a.join(b);  // join never decreases a component
  EXPECT_EQ(a[0], 2u);
  EXPECT_EQ(a[1], 1u);
  EXPECT_EQ(a.snapshot(), (std::vector<std::uint64_t>{2, 1, 0}));
}

// --- FastTrack epoch rule (detector driven directly) ----------------------

TEST(RaceDetectorUnit, CollectiveSyncOrdersCrossRankWrites) {
  Report report;
  RaceDetector det(report);
  det.reset(2);
  int region = 0;
  det.region_register(&region, sizeof(region), "unit.region");

  det.access(&region, 0, /*write=*/true, 1.0, "map");
  const std::vector<int> world{0, 1};
  det.collective_sync(world);
  det.access(&region, 1, /*write=*/true, 2.0, "reduce");
  EXPECT_TRUE(report.empty()) << report.text();

  // A third write with no edge after rank 1's write is the race.
  det.access(&region, 0, /*write=*/true, 3.0, "reduce");
  ASSERT_EQ(report.count("write-write-race"), 1u);
  EXPECT_EQ(det.races(), 1u);
}

TEST(RaceDetectorUnit, UnorderedWriteWriteNamesBothSites) {
  Report report;
  RaceDetector det(report);
  det.reset(2);
  int region = 0;
  det.region_register(&region, sizeof(region), "unit.region");

  det.access(&region, 0, /*write=*/true, 1.5, "map/aggregate");
  det.access(&region, 1, /*write=*/true, 2.5, "reduce");

  ASSERT_EQ(report.count("write-write-race"), 1u);
  const Diagnostic d = report.first("write-write-race");
  EXPECT_EQ(d.ranks, (std::vector<int>{0, 1}));
  EXPECT_EQ(d.phase, "reduce");
  EXPECT_NE(d.message.find("'unit.region'"), std::string::npos);
  EXPECT_NE(d.message.find("rank 0 wrote in phase 'map/aggregate' at t=1.5s"),
            std::string::npos);
  EXPECT_NE(d.message.find("rank 1 wrote in phase 'reduce' at t=2.5s"),
            std::string::npos);
  EXPECT_NE(d.message.find("no happens-before edge"), std::string::npos);
}

TEST(RaceDetectorUnit, ConcurrentReadersDoNotRace) {
  Report report;
  RaceDetector det(report);
  det.reset(4);
  int region = 0;
  det.region_register(&region, sizeof(region), "unit.region");
  for (int r = 0; r < 4; ++r) {
    det.access(&region, r, /*write=*/false, 1.0, "map");
  }
  EXPECT_TRUE(report.empty()) << report.text();

  // ...but a write unordered after any of those reads is reported.
  det.access(&region, 2, /*write=*/true, 2.0, "map");
  ASSERT_EQ(report.count("read-write-race"), 1u);
  const Diagnostic d = report.first("read-write-race");
  EXPECT_NE(d.message.find("read in phase 'map'"), std::string::npos);
  EXPECT_EQ(d.ranks.size(), 2u);
}

TEST(RaceDetectorUnit, P2pEdgeOrdersSenderThenReceiver) {
  Report report;
  RaceDetector det(report);
  det.reset(2);
  int region = 0;
  det.region_register(&region, sizeof(region), "unit.region");

  det.access(&region, 0, /*write=*/true, 1.0, "send-side");
  const std::vector<std::uint64_t> msg_clock = det.send_edge(0);
  det.recv_edge(1, msg_clock);
  det.access(&region, 1, /*write=*/true, 2.0, "recv-side");
  EXPECT_TRUE(report.empty()) << report.text();

  // The edge is one-way: the sender is NOT ordered after the receiver.
  det.access(&region, 0, /*write=*/true, 3.0, "send-side");
  EXPECT_EQ(report.count("write-write-race"), 1u);
}

TEST(RaceDetectorUnit, HandoffPublishAcquireOrdersConsumers) {
  Report report;
  RaceDetector det(report);
  det.reset(2);
  int region = 0;
  det.region_register(&region, sizeof(region), "unit.region");
  constexpr std::uint64_t kKey = 42;

  det.access(&region, 0, /*write=*/true, 1.0, "produce");
  det.handoff_publish(0, kKey);
  det.handoff_acquire(1, kKey);
  det.access(&region, 1, /*write=*/false, 2.0, "consume");
  EXPECT_TRUE(report.empty()) << report.text();

  // Acquiring a key nobody published is a no-op, not an edge.
  det.handoff_acquire(1, kKey + 1);
  det.access(&region, 1, /*write=*/true, 3.0, "consume");
  det.access(&region, 0, /*write=*/false, 4.0, "produce");
  EXPECT_EQ(report.count("read-write-race"), 1u);
}

TEST(RaceDetectorUnit, PageLifecycleTransfersNeedAnEdge) {
  Report report;
  RaceDetector det(report);
  det.reset(2);
  int block = 0;

  // Alloc on rank 0, release on rank 1 with a p2p edge between: clean
  // ownership transfer.
  det.page_alloc(0, &block, 64, "kv.page", 1.0, "map");
  det.recv_edge(1, det.send_edge(0));
  det.page_release(1, &block, 2.0, "map");
  EXPECT_TRUE(report.empty()) << report.text();

  // Same transfer without the edge: the release races the alloc write.
  det.page_alloc(0, &block, 64, "kv.page", 3.0, "map");
  det.page_release(1, &block, 4.0, "reduce");
  ASSERT_EQ(report.count("write-write-race"), 1u);
  EXPECT_NE(report.first("write-write-race").message.find("'page:kv.page'"),
            std::string::npos);

  // Release unregisters: later accesses to the stale base are ignored.
  det.access(&block, 0, /*write=*/true, 5.0, "map");
  EXPECT_EQ(report.count("write-write-race"), 1u);
}

TEST(RaceDetectorUnit, ReportsPerRegionAreCapped) {
  Report report;
  RaceDetector det(report, /*max_region_reports=*/2);
  det.reset(2);
  int region = 0;
  det.region_register(&region, sizeof(region), "unit.region");
  for (int i = 0; i < 5; ++i) {
    det.access(&region, i % 2, /*write=*/true, 1.0, "map");
  }
  EXPECT_EQ(det.races(), 4u) << "every race counted";
  EXPECT_EQ(report.count("write-write-race"), 2u) << "reports capped";
}

// --- annotation API through real rank threads -----------------------------

TEST(RaceShared, BarrierSeparatedWritesAreRaceFree) {
  Report report;
  JobChecker checker(report, race_config());
  check::Shared<std::uint64_t> total("race.total");
  simmpi::run_test(
      4,
      [&](Context& ctx) {
        // Token-style protocol: one writer per round, rounds separated
        // by barriers, so every write is ordered after every other.
        for (int turn = 0; turn < ctx.size(); ++turn) {
          if (ctx.rank() == turn) {
            total.update([](std::uint64_t& v) { ++v; });
          }
          ctx.comm.barrier();
        }
        if (ctx.rank() == 0) {
          EXPECT_EQ(total.read(), 4u);
        }
      },
      nullptr, &checker);
  EXPECT_TRUE(report.empty()) << report.text();
  EXPECT_EQ(total.unchecked(), 4u);
}

TEST(RaceShared, P2pMessageOrdersAccessAcrossRanks) {
  Report report;
  JobChecker checker(report, race_config());
  check::Shared<std::uint64_t> value("race.p2p");
  simmpi::run_test(
      2,
      [&](Context& ctx) {
        if (ctx.rank() == 0) {
          value.write(7);
          const std::string token = "go";
          ctx.comm.send(1, 1, as_bytes(token));
        } else {
          (void)ctx.comm.recv(0, 1);
          EXPECT_EQ(value.read(), 7u);
          value.write(8);
        }
      },
      nullptr, &checker);
  EXPECT_TRUE(report.empty()) << report.text();
  EXPECT_EQ(value.unchecked(), 8u);
}

TEST(RaceShared, UnorderedCrossRankWritesAreReported) {
  Report report;
  JobChecker checker(report, race_config());
  check::Shared<std::uint64_t> hot("race.hot");
  simmpi::run_test(
      2,
      [&](Context& ctx) {
        hot.write(static_cast<std::uint64_t>(ctx.rank()));
      },
      nullptr, &checker);

  ASSERT_EQ(report.count("write-write-race"), 1u);
  const Diagnostic d = report.first("write-write-race");
  EXPECT_EQ(d.ranks, (std::vector<int>{0, 1}));
  EXPECT_NE(d.message.find("'race.hot'"), std::string::npos);
  EXPECT_NE(d.message.find("rank 0 wrote"), std::string::npos);
  EXPECT_NE(d.message.find("rank 1 wrote"), std::string::npos);
  EXPECT_NE(d.message.find("at t="), std::string::npos);
}

// Regression for the PR 2 shared-capture bug: every rank accumulated
// into one by-reference captured variable with no synchronization. The
// detector must name both access sites with their rank and phase (the
// static twin of this assertion is lint_capture.py flagging
// tests/check/fixtures/racy_capture.cpp, wired as a WILL_FAIL ctest).
TEST(RaceShared, SharedCaptureAccumulatorRegressionNamesBothSites) {
  Report report;
  JobChecker checker(report, race_config());
  check::Shared<std::uint64_t> sum("pr2.word_total");
  simmpi::run_test(
      2,
      [&](Context& ctx) {
        const stats::PhaseScope phase(ctx.rank() == 0 ? "map" : "reduce");
        sum.update([&](std::uint64_t& v) {
          v += static_cast<std::uint64_t>(10 + ctx.rank());
        });
      },
      nullptr, &checker);

  ASSERT_EQ(report.count("write-write-race"), 1u);
  const Diagnostic d = report.first("write-write-race");
  EXPECT_EQ(d.ranks, (std::vector<int>{0, 1}));
  // Both conflicting sites appear with their own rank AND phase: rank 0
  // was in 'map', rank 1 in 'reduce', whichever order they ran.
  EXPECT_NE(d.message.find("rank 0 wrote in phase 'map'"),
            std::string::npos);
  EXPECT_NE(d.message.find("rank 1 wrote in phase 'reduce'"),
            std::string::npos);
}

TEST(RaceShared, AccessorsAreUncheckedOutsideAJob) {
  // No job bound: Shared<T> degrades to a plain variable (and must not
  // crash touching a detector that does not exist).
  check::Shared<int> value("race.unbound", 3);
  EXPECT_EQ(value.read(), 3);
  value.write(4);
  value.update([](int& v) { v += 1; });
  EXPECT_EQ(value.unchecked(), 5);
  EXPECT_EQ(check::current_race_detector(), nullptr);
}

// --- sched integration ----------------------------------------------------

/// produce -> sink chain whose consume hooks fold into `sink`.
Graph chain_graph(std::shared_ptr<std::map<std::uint64_t, std::uint64_t>> out,
                  std::shared_ptr<std::mutex> out_mutex) {
  Graph g;
  JobNode produce;
  produce.name = "produce";
  produce.producer = [](NodeCtx& nctx, mimir::Emitter& emit) {
    for (std::uint64_t i = 0; i < 64; ++i) {
      if (static_cast<int>(i) % nctx.exec.size() != nctx.exec.rank()) continue;
      emit.emit(u64_view(i % 8), std::uint64_t{1});
    }
  };
  JobNode sink;
  sink.name = "sink";
  sink.partial = [](std::string_view, std::string_view a, std::string_view b,
                    std::string& merged) {
    merged.assign(mimir::as_view(mimir::as_u64(a) + mimir::as_u64(b)));
  };
  sink.consume = [out, out_mutex](NodeCtx&, mimir::KVContainer& kvs) {
    const std::scoped_lock lock(*out_mutex);
    kvs.scan([&](const mimir::KVView& kv) {
      (*out)[mimir::as_u64(kv.key)] += mimir::as_u64(kv.value);
    });
  };
  const int a = g.add(produce);
  const int b = g.add(sink);
  g.add_edge(a, b);
  return g;
}

TEST(RaceSched, HandoffChainRunsRaceFreeAndBitIdentical) {
  auto machine = simtime::MachineProfile::test_profile();
  machine.pfs_latency = 1e-3;
  machine.pfs_bandwidth = 1e6;
  machine.pfs_client_bandwidth = 1e6;

  auto run_once = [&](check::JobChecker* checker) {
    auto out = std::make_shared<std::map<std::uint64_t, std::uint64_t>>();
    auto mtx = std::make_shared<std::mutex>();
    const Graph g = chain_graph(out, mtx);
    pfs::FileSystem fs(machine, 4);
    const auto outcome = sched::run_graph(4, machine, fs, g, {}, nullptr,
                                          checker);
    return std::pair{outcome.stats, *out};
  };

  const auto [plain_stats, plain_out] = run_once(nullptr);
  Report report;
  JobChecker checker(report, race_config());
  const auto [race_stats, race_out] = run_once(&checker);

  EXPECT_TRUE(report.empty()) << report.text();
  EXPECT_EQ(plain_out, race_out);
  EXPECT_EQ(plain_stats.sim_time, race_stats.sim_time);
  EXPECT_EQ(plain_stats.node_peak, race_stats.node_peak);
  EXPECT_EQ(plain_stats.shuffle_bytes, race_stats.shuffle_bytes);
}

TEST(RaceSched, ReadWriteAcrossConcurrentWaveGroupsIsReported) {
  // Two independent branches admitted concurrently: their rank groups
  // share no collectives, so a write in one group and a read in the
  // other have no happens-before edge — exactly the cross-group hazard
  // the planner's component isolation is meant to prevent users from
  // creating by hand.
  auto machine = simtime::MachineProfile::test_profile();
  machine.pfs_latency = 1e-3;
  machine.pfs_bandwidth = 1e6;
  machine.pfs_client_bandwidth = 1e6;
  machine.ranks_per_node = 2;

  check::Shared<std::uint64_t> leak("race.cross_group");
  Graph g;
  JobNode writer;
  writer.name = "writer";
  writer.producer = [&leak](NodeCtx& nctx, mimir::Emitter& emit) {
    if (nctx.world_rank == 0) leak.write(1);
    emit.emit(u64_view(0), std::uint64_t{1});
  };
  JobNode reader;
  reader.name = "reader";
  reader.producer = [&leak](NodeCtx& nctx, mimir::Emitter& emit) {
    if (nctx.world_rank == 2) (void)leak.read();
    emit.emit(u64_view(1), std::uint64_t{1});
  };
  (void)g.add(writer);
  (void)g.add(reader);

  GraphOptions opts;
  opts.max_concurrency = 2;
  opts.memory_budget = 64ull << 20;

  Report report;
  JobChecker checker(report, race_config());
  pfs::FileSystem fs(machine, 4);
  const auto outcome = sched::run_graph(4, machine, fs, g, opts, nullptr,
                                        &checker);
  ASSERT_EQ(outcome.plan.waves[0].groups.size(), 2u)
      << "test needs the branches concurrent";
  ASSERT_EQ(report.count("read-write-race"), 1u) << report.text();
  const Diagnostic d = report.first("read-write-race");
  EXPECT_EQ(d.ranks, (std::vector<int>{0, 2}));
  EXPECT_NE(d.message.find("'race.cross_group'"), std::string::npos);
}

// --- bit-identity ---------------------------------------------------------

void wordish_job(Context& ctx) {
  mimir::Job job(ctx, {});
  job.map_custom([&](mimir::Emitter& out) {
    for (int i = 0; i < 300; ++i) {
      out.emit("key" + std::to_string((i * 7 + ctx.rank()) % 37),
               "v" + std::to_string(i % 5));
    }
  });
  job.reduce([](std::string_view key, mimir::ValueReader& values,
                mimir::Emitter& out) {
    std::uint64_t n = 0;
    std::string_view v;
    while (values.next(v)) ++n;
    out.emit(key, std::to_string(n));
  });
  ctx.comm.clock_sync();
}

TEST(RaceEquivalence, ResultsAreBitIdenticalWithTheDetectorOn) {
  const auto plain = simmpi::run_test(4, wordish_job);

  Report report;
  JobChecker checker(report, race_config());
  const auto raced = simmpi::run_test(4, wordish_job, nullptr, &checker);

  EXPECT_TRUE(report.empty()) << report.text();
  // Exact equality on purpose: the detector is accounting-only — it
  // must never advance a simulated clock or charge a tracker.
  EXPECT_EQ(plain.sim_time, raced.sim_time);
  EXPECT_EQ(plain.node_peak, raced.node_peak);
  EXPECT_EQ(plain.node_peaks, raced.node_peaks);
  EXPECT_EQ(plain.shuffle_bytes, raced.shuffle_bytes);
  EXPECT_EQ(plain.io.bytes_read, raced.io.bytes_read);
  EXPECT_EQ(plain.io.bytes_written, raced.io.bytes_written);
}

TEST(RaceEquivalence, ComposesWithFaultInjectedRecovery) {
  // A node crash plus retry under the race detector: same attempts,
  // same simulated results as the checked-but-unraced run.
  auto machine = simtime::MachineProfile::test_profile();
  machine.pfs_latency = 1e-3;
  machine.pfs_bandwidth = 1e6;
  machine.pfs_client_bandwidth = 1e6;
  machine.ranks_per_node = 2;
  const inject::FaultPlan plan = inject::FaultPlan::parse("node_crash:1@map");

  auto run_once = [&](const CheckConfig& cfg) {
    auto out = std::make_shared<std::map<std::uint64_t, std::uint64_t>>();
    auto mtx = std::make_shared<std::mutex>();
    const Graph g = chain_graph(out, mtx);
    pfs::FileSystem fs(machine, 4);
    Report report;
    JobChecker checker(report, cfg);
    const auto outcome = sched::run_graph_with_recovery(
        4, machine, fs, g, {}, {}, &plan, nullptr, &checker);
    EXPECT_EQ(report.count("write-write-race") +
                  report.count("read-write-race"),
              0u)
        << report.text();
    return std::pair{outcome, *out};
  };

  const auto [checked, checked_out] = run_once(CheckConfig{});
  const auto [raced, raced_out] = run_once(race_config());
  EXPECT_GE(checked.attempts, 2);
  EXPECT_EQ(checked.attempts, raced.attempts);
  EXPECT_EQ(checked_out, raced_out);
  EXPECT_EQ(checked.stats.sim_time, raced.stats.sim_time);
  EXPECT_EQ(checked.stats.node_peak, raced.stats.node_peak);
}

// --- cross-run determinism checker ----------------------------------------

void seeded_job(Context& ctx, std::uint64_t payload_bytes) {
  const stats::PhaseScope phase("iterate");
  ctx.comm.barrier();
  (void)ctx.comm.allreduce_u64(1, simmpi::Op::kSum);
  // The divergence knob: a root payload whose SIZE depends on the seed
  // (sizes are part of the collective fingerprint; values are not).
  std::vector<std::byte> blob(payload_bytes);
  ctx.comm.bcast(blob, 0);
  ctx.comm.barrier();
}

TEST(RaceDeterminism, IdenticalRunsProduceIdenticalDigests) {
  Report report;
  JobChecker checker(report, race_config());
  simmpi::run_test(
      4, [](Context& ctx) { seeded_job(ctx, 16); }, nullptr, &checker);
  const DeterminismDigest first = check::determinism_digest(checker);

  simmpi::run_test(
      4, [](Context& ctx) { seeded_job(ctx, 16); }, nullptr, &checker);
  const DeterminismDigest second = check::determinism_digest(checker);

  ASSERT_FALSE(first.empty());
  ASSERT_EQ(first.ranks.size(), 4u);
  EXPECT_GE(first.ranks[0].size(), 4u) << "one entry per collective";
  EXPECT_EQ(first.combined(), second.combined());
  EXPECT_EQ(check::compare_digests(first, second), std::nullopt);
}

TEST(RaceDeterminism, DivergentRunNamesFirstRankAndPhase) {
  Report report;
  JobChecker checker(report, race_config());
  simmpi::run_test(
      4, [](Context& ctx) { seeded_job(ctx, 16); }, nullptr, &checker);
  const DeterminismDigest first = check::determinism_digest(checker);

  simmpi::run_test(
      4, [](Context& ctx) { seeded_job(ctx, 32); }, nullptr, &checker);
  const DeterminismDigest second = check::determinism_digest(checker);

  EXPECT_NE(first.combined(), second.combined());
  const auto div = check::compare_digests(first, second);
  ASSERT_TRUE(div.has_value());
  EXPECT_EQ(div->rank, 0) << "lowest diverging rank reported first";
  EXPECT_EQ(div->phase, "iterate");
  EXPECT_NE(div->detail.find("fingerprint differs"), std::string::npos);
  EXPECT_NE(div->detail.find("phase 'iterate'"), std::string::npos);
}

TEST(RaceDeterminism, StructuralMismatchesAreNamedDirectly) {
  DeterminismDigest a;
  a.ranks = {{DigestEntry{1, "map"}, DigestEntry{2, "reduce"}}};
  DeterminismDigest b;
  b.ranks = {{DigestEntry{1, "map"}}};

  const auto shorter = check::compare_digests(a, b);
  ASSERT_TRUE(shorter.has_value());
  EXPECT_EQ(shorter->rank, 0);
  EXPECT_EQ(shorter->index, 1u);
  EXPECT_EQ(shorter->phase, "reduce");
  EXPECT_NE(shorter->detail.find("2 collectives in one run, 1"),
            std::string::npos);

  DeterminismDigest wider = a;
  wider.ranks.emplace_back();
  const auto missing_rank = check::compare_digests(a, wider);
  ASSERT_TRUE(missing_rank.has_value());
  EXPECT_EQ(missing_rank->rank, 1);
  EXPECT_NE(missing_rank->detail.find("present in only one run"),
            std::string::npos);

  EXPECT_EQ(check::compare_digests(a, a), std::nullopt);
}

TEST(RaceDeterminism, DigestIsEmptyWithoutTheDetector) {
  Report report;
  JobChecker checker(report);  // race off
  simmpi::run_test(
      2, [](Context& ctx) { ctx.comm.barrier(); }, nullptr, &checker);
  EXPECT_EQ(checker.race(), nullptr);
  EXPECT_TRUE(check::determinism_digest(checker).empty());
}

// --- non-blocking collectives: frozen regions and the completion edge ----

// The buffers passed to ialltoallv belong to the operation between
// initiate and wait. The FastTrack epoch rule cannot catch a rank
// touching its *own* in-flight buffer (its clock always dominates its
// own epochs), so the detector freezes the region instead and reports
// any touch while frozen.
TEST(RaceNbFreeze, WriteAfterInitiateIsReportedAndThawedByCompletion) {
  Report report;
  RaceDetector det(report);
  det.reset(2);
  int region = 0;
  det.region_register(&region, sizeof(region), "nb.send");

  det.access(&region, 0, /*write=*/true, 1.0, "map");
  det.nb_initiate(&region, 0, /*op_writes=*/false, "ialltoallv", 2.0,
                  "map");
  det.access(&region, 0, /*write=*/true, 3.0, "map/aggregate");
  ASSERT_EQ(report.count("write-after-initiate"), 1u);
  const Diagnostic d = report.first("write-after-initiate");
  EXPECT_NE(d.message.find("'nb.send'"), std::string::npos);
  EXPECT_NE(d.message.find("ialltoallv"), std::string::npos);
  EXPECT_EQ(det.races(), 1u);

  // Completion thaws: the same write afterwards is clean.
  det.nb_complete(&region, 0, 4.0, "map");
  det.access(&region, 0, /*write=*/true, 5.0, "map");
  EXPECT_EQ(det.races(), 1u);
}

TEST(RaceNbFreeze, ReadOfInFlightSendBufferIsAllowed) {
  // The op only *reads* a send buffer, so a concurrent read is fine;
  // a receive buffer the op writes must not even be read.
  Report report;
  RaceDetector det(report);
  det.reset(1);
  int send = 0;
  int recv = 0;
  det.region_register(&send, sizeof(send), "nb.send");
  det.region_register(&recv, sizeof(recv), "nb.recv");

  det.nb_initiate(&send, 0, /*op_writes=*/false, "ialltoallv", 1.0, "map");
  det.nb_initiate(&recv, 0, /*op_writes=*/true, "ialltoallv", 1.0, "map");
  det.access(&send, 0, /*write=*/false, 2.0, "map");
  EXPECT_TRUE(report.empty()) << report.text();
  det.access(&recv, 0, /*write=*/false, 2.0, "map");
  ASSERT_EQ(report.count("read-after-initiate"), 1u);
  EXPECT_EQ(det.races(), 1u);
}

TEST(RaceNb, WriteToInFlightSendBufferIsCaughtThroughRealRanks) {
  Report report;
  JobChecker checker(report, race_config());
  simmpi::run_test(
      2,
      [](Context& ctx) {
        // TrackedBuffers register with the detector through the
        // lifecycle auditor's page hooks.
        memtrack::TrackedBuffer send(ctx.tracker, 16);
        memtrack::TrackedBuffer recv(ctx.tracker, 16);
        const std::vector<std::uint64_t> counts{8, 8}, displs{0, 8};
        simmpi::Request req =
            ctx.comm.ialltoallv(send.span(), counts, displs, recv.span());
        // Buggy: overwrite the buffer the in-flight exchange still owns.
        check::race_note_access(send.data(), /*write=*/true);
        req.wait();
      },
      nullptr, &checker);
  EXPECT_EQ(report.count("write-after-initiate"), 2u) << report.text();
}

TEST(RaceNb, WaiterIsOrderedAfterEveryInitiator) {
  // The happens-before edge lands at wait(), joining every initiator's
  // published clock: what rank 1 wrote before initiating is visible —
  // race-free — to rank 0 after its wait returns.
  Report report;
  JobChecker checker(report, race_config());
  check::Shared<std::uint64_t> value("nb.handoff");
  simmpi::run_test(
      2,
      [&](Context& ctx) {
        if (ctx.rank() == 1) value.write(5);
        simmpi::Request req = ctx.comm.iallreduce_u64(1, simmpi::Op::kSum);
        req.wait();
        if (ctx.rank() == 0) {
          EXPECT_EQ(value.read(), 5u);
        }
      },
      nullptr, &checker);
  EXPECT_TRUE(report.empty()) << report.text();
}

TEST(RaceNb, OverlappedShuffleIsRaceFreeAndBitIdentical) {
  // The double-buffered shuffle must be clean under the detector, and
  // the per-rank intermediate KV sequence must be byte-identical with
  // overlap on or off (the bit-identity acceptance criterion, enforced
  // here under the race detector as well).
  auto run_once = [](bool overlap, check::JobChecker* checker) {
    auto per_rank =
        std::make_shared<std::vector<std::vector<std::string>>>(4);
    mimir::JobConfig cfg;
    cfg.page_size = 1 << 10;
    cfg.comm_buffer = 256;
    cfg.overlap = overlap;
    simmpi::run_test(
        4,
        [&](Context& ctx) {
          mimir::Job job(ctx, cfg);
          job.map_custom([&](mimir::Emitter& out) {
            for (int i = 0; i < 300; ++i) {
              const int k = (ctx.rank() * 300 + i) % 37;
              out.emit("key" + std::to_string(k),
                       "value" + std::to_string(i));
            }
          });
          auto& mine = (*per_rank)[static_cast<std::size_t>(ctx.rank())];
          job.intermediate().scan([&](const mimir::KVView& kv) {
            mine.push_back(std::string(kv.key) + "=" +
                           std::string(kv.value));
          });
        },
        nullptr, checker);
    return *per_rank;
  };

  const auto blocking_plain = run_once(false, nullptr);
  Report report;
  JobChecker checker(report, race_config());
  const auto overlapped_checked = run_once(true, &checker);
  EXPECT_TRUE(report.empty()) << report.text();
  EXPECT_EQ(checker.race()->races(), 0u);
  EXPECT_EQ(blocking_plain, overlapped_checked);

  Report report2;
  JobChecker checker2(report2, race_config());
  const auto blocking_checked = run_once(false, &checker2);
  EXPECT_TRUE(report2.empty()) << report2.text();
  EXPECT_EQ(blocking_plain, blocking_checked);
}

// --- enablement -----------------------------------------------------------

TEST(RaceConfig, ReadsMimirRaceKey) {
  mutil::Config cfg;
  cfg.set("mimir.race", "1");
  EXPECT_TRUE(CheckConfig::from(cfg).race);
  cfg.set("mimir.race", "0");
  EXPECT_FALSE(CheckConfig::from(cfg).race);
}

TEST(RaceConfig, CheckerOwnsADetectorOnlyWhenEnabled) {
  Report report;
  const JobChecker off(report);
  EXPECT_EQ(off.race(), nullptr);
  const JobChecker on(report, race_config());
  EXPECT_NE(on.race(), nullptr);
}

TEST(RaceEnv, EnvFlagParsing) {
  ASSERT_EQ(setenv("MIMIR_RACE", "1", 1), 0);
  EXPECT_TRUE(check::race_env_enabled());
  ASSERT_EQ(setenv("MIMIR_RACE", "off", 1), 0);
  EXPECT_FALSE(check::race_env_enabled());
  ASSERT_EQ(setenv("MIMIR_RACE", "yes", 1), 0);
  EXPECT_TRUE(check::race_env_enabled());
  ASSERT_EQ(setenv("MIMIR_RACE", "false", 1), 0);
  EXPECT_FALSE(check::race_env_enabled());
  ASSERT_EQ(unsetenv("MIMIR_RACE"), 0);
  EXPECT_FALSE(check::race_env_enabled());
}

}  // namespace
