// Lint fixture — NOT compiled, only scanned by scripts/lint_capture.py.
//
// Reproduces the PR 2 shared-capture bug verbatim: a driver-side
// accumulator captured by reference into the rank body, incremented by
// every rank thread with no happens-before edge. lint_capture.py must
// flag the `[&]` below (the ctest entry is WILL_FAIL); the runtime twin
// of this pattern lives in test_race.cpp
// (RaceShared.SharedCaptureAccumulatorRegressionNamesBothSites).
#include <cstdint>
#include <cstdio>

#include "simmpi/runtime.hpp"

int main() {
  std::uint64_t word_total = 0;  // shared across all rank threads
  simmpi::run_test(4, [&](simmpi::Context& ctx) {
    // Every rank bumps the captured counter concurrently: a
    // write-write race on word_total.
    word_total += static_cast<std::uint64_t>(ctx.rank() + 10);
  });
  std::printf("total: %llu\n",
              static_cast<unsigned long long>(word_total));
  return 0;
}
