#include "mrmpi/mrmpi.hpp"

#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "mutil/hash.hpp"
#include <string>

namespace {

using mimir::Emitter;
using mimir::KVView;
using mimir::ValueReader;
using mrmpi::MapReduce;
using mrmpi::MRConfig;
using mrmpi::OocMode;
using simmpi::Context;

constexpr std::uint64_t kOne = 1;

void wc_map(std::string_view chunk, Emitter& out) {
  std::size_t start = 0;
  while (start < chunk.size()) {
    const std::size_t end = chunk.find_first_of(" \n\t", start);
    const std::size_t stop =
        end == std::string_view::npos ? chunk.size() : end;
    if (stop > start) {
      out.emit(chunk.substr(start, stop - start), mimir::as_view(kOne));
    }
    start = stop + 1;
  }
}

void wc_reduce(std::string_view key, ValueReader& values, Emitter& out) {
  std::uint64_t total = 0;
  std::string_view v;
  while (values.next(v)) total += mimir::as_u64(v);
  out.emit(key, mimir::as_view(total));
}

void wc_combine(std::string_view, std::string_view a, std::string_view b,
                std::string& out) {
  const std::uint64_t total = mimir::as_u64(a) + mimir::as_u64(b);
  out.assign(mimir::as_view(total));
}

std::map<std::string, std::uint64_t> gather_counts(Context& ctx,
                                                   MapReduce& mr) {
  std::string flat;
  mr.scan_kv([&](const KVView& kv) {
    flat += std::string(kv.key) + ' ' +
            std::to_string(mimir::as_u64(kv.value)) + '\n';
  });
  const auto gathered = ctx.comm.gatherv(
      0, std::span<const std::byte>(
             reinterpret_cast<const std::byte*>(flat.data()), flat.size()));
  std::map<std::string, std::uint64_t> counts;
  if (ctx.rank() == 0) {
    std::istringstream in(
        std::string(reinterpret_cast<const char*>(gathered.data.data()),
                    gathered.data.size()));
    std::string word;
    std::uint64_t n = 0;
    while (in >> word >> n) counts[word] += n;
  }
  return counts;
}

void write_input(pfs::FileSystem& fs, const std::string& text) {
  simtime::Clock clock;
  fs.write_file("input/part0", text, clock);
}

class MrMpiWordCount : public ::testing::TestWithParam<int> {};

TEST_P(MrMpiWordCount, FullPipelineCounts) {
  const int ranks = GetParam();
  auto machine = simtime::MachineProfile::test_profile();
  pfs::FileSystem fs(machine, ranks);
  write_input(fs, "the cat sat on the mat\nthe dog sat\ncat and dog\n");
  const std::vector<std::string> files{"input/part0"};

  simmpi::run(ranks, machine, fs, [&](Context& ctx) {
    MRConfig cfg;
    cfg.page_size = 2048;
    MapReduce mr(ctx, cfg);
    mr.map_text_files(files, wc_map);
    mr.aggregate();
    mr.convert();
    mr.reduce(wc_reduce);
    const auto counts = gather_counts(ctx, mr);
    if (ctx.rank() == 0) {
      EXPECT_EQ(counts.at("the"), 3u);
      EXPECT_EQ(counts.at("cat"), 2u);
      EXPECT_EQ(counts.at("dog"), 2u);
      EXPECT_EQ(counts.size(), 7u);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Ranks, MrMpiWordCount, ::testing::Values(1, 3, 6));

TEST(MrMpi, AggregateRoutesByHashOwner) {
  simmpi::run_test(4, [](Context& ctx) {
    MapReduce mr(ctx, {});
    mr.map_custom([&](Emitter& out) {
      for (int i = 0; i < 50; ++i) {
        out.emit("key" + std::to_string(i), "v");
      }
    });
    mr.aggregate();
    mr.scan_kv([&](const KVView& kv) {
      EXPECT_EQ(mutil::hash_bytes(kv.key) %
                    static_cast<std::uint64_t>(ctx.size()),
                static_cast<std::uint64_t>(ctx.rank()));
    });
  });
}

TEST(MrMpi, CompressShrinksShuffleNotMemory) {
  auto machine = simtime::MachineProfile::test_profile();
  machine.ranks_per_node = 2;
  pfs::FileSystem fs(machine, 2);
  write_input(fs, [] {
    std::string text;
    for (int i = 0; i < 200; ++i) text += "alpha beta alpha\n";
    return text;
  }());
  const std::vector<std::string> files{"input/part0"};

  std::uint64_t peak_plain = 0, peak_cps = 0;
  std::uint64_t shuffle_plain = 0, shuffle_cps = 0;
  for (const bool cps : {false, true}) {
    const auto stats = simmpi::run(2, machine, fs, [&](Context& ctx) {
      MRConfig cfg;
      cfg.page_size = 8192;
      MapReduce mr(ctx, cfg);
      mr.map_text_files(files, wc_map);
      if (cps) mr.compress(wc_combine);
      mr.aggregate();
      mr.convert();
      mr.reduce(wc_reduce);
      const auto shuffled = ctx.comm.allreduce_u64(
          mr.metrics().shuffled_bytes, simmpi::Op::kSum);
      const auto combined = ctx.comm.allreduce_u64(
          mr.metrics().combined_kvs, simmpi::Op::kSum);
      if (ctx.rank() == 0) {
        if (cps) {
          EXPECT_GT(combined, 0u);
          shuffle_cps = shuffled;
        } else {
          shuffle_plain = shuffled;
        }
      }
    });
    if (cps) {
      peak_cps = stats.node_peak;
    } else {
      peak_plain = stats.node_peak;
    }
  }
  EXPECT_LT(shuffle_cps, shuffle_plain);
  // The paper: compression does NOT reduce MR-MPI's memory usage (fixed
  // pages) — peaks stay in the same ballpark (compress adds a phase).
  EXPECT_GE(peak_cps, peak_plain / 2);
}

TEST(MrMpi, SpilloverKeepsResultsCorrect) {
  // Page far smaller than the data: everything spills, results identical.
  // (Every KMV still fits one page — MR-MPI cannot represent one that
  // does not; see KmvLargerThanPageRejected below.)
  auto machine = simtime::MachineProfile::test_profile();
  pfs::FileSystem fs(machine, 2);
  std::string text;
  for (int i = 0; i < 600; ++i) {
    text += "w" + std::to_string(i % 60) + "\n";
  }
  write_input(fs, text);
  const std::vector<std::string> files{"input/part0"};

  simmpi::run(2, machine, fs, [&](Context& ctx) {
    MRConfig cfg;
    cfg.page_size = 1024;  // small page forces out-of-core everywhere
    MapReduce mr(ctx, cfg);
    mr.map_text_files(files, wc_map);
    mr.aggregate();
    mr.convert();
    mr.reduce(wc_reduce);
    EXPECT_TRUE(mr.metrics().spilled);
    const auto counts = gather_counts(ctx, mr);
    if (ctx.rank() == 0) {
      ASSERT_EQ(counts.size(), 60u);
      for (int i = 0; i < 60; ++i) {
        EXPECT_EQ(counts.at("w" + std::to_string(i)), 10u);
      }
    }
  });
}

TEST(MrMpi, KmvLargerThanPageRejected) {
  // One key with more value bytes than a page: MR-MPI cannot build the
  // KMV (its convert requires each KMV to fit in a page).
  EXPECT_THROW(
      simmpi::run_test(1,
                       [](Context& ctx) {
                         MRConfig cfg;
                         cfg.page_size = 256;
                         MapReduce mr(ctx, cfg);
                         mr.map_custom([](Emitter& out) {
                           for (int i = 0; i < 100; ++i) {
                             out.emit("hot", "0123456789");
                           }
                         });
                         mr.aggregate();
                         mr.convert();
                       }),
      mutil::UsageError);
}

TEST(MrMpi, SpillingIsSlowerThanInMemory) {
  auto machine = simtime::MachineProfile::test_profile();
  machine.pfs_latency = 1e-3;
  machine.pfs_bandwidth = 1e5;
  std::string text;
  for (int i = 0; i < 300; ++i) text += "word" + std::to_string(i) + "\n";

  double in_memory = 0, out_of_core = 0;
  for (const std::uint64_t page : {64ull << 10, 256ull}) {
    pfs::FileSystem fs(machine, 1);
    write_input(fs, text);
    const std::vector<std::string> files{"input/part0"};
    const auto stats = simmpi::run(1, machine, fs, [&](Context& ctx) {
      MRConfig cfg;
      cfg.page_size = page;
      MapReduce mr(ctx, cfg);
      mr.map_text_files(files, wc_map);
      mr.aggregate();
      mr.convert();
      mr.reduce(wc_reduce);
    });
    if (page == 256) {
      out_of_core = stats.sim_time;
    } else {
      in_memory = stats.sim_time;
    }
  }
  EXPECT_GT(out_of_core, in_memory * 5)
      << "spilling must cost orders of magnitude in simulated time";
}

TEST(MrMpi, ErrorModeTerminatesOnOverflow) {
  auto machine = simtime::MachineProfile::test_profile();
  pfs::FileSystem fs(machine, 1);
  std::string text;
  for (int i = 0; i < 200; ++i) text += "word" + std::to_string(i) + "\n";
  write_input(fs, text);
  const std::vector<std::string> files{"input/part0"};
  EXPECT_THROW(simmpi::run(1, machine, fs,
                           [&](Context& ctx) {
                             MRConfig cfg;
                             cfg.page_size = 128;
                             cfg.out_of_core = OocMode::kError;
                             MapReduce mr(ctx, cfg);
                             mr.map_text_files(files, wc_map);
                             mr.aggregate();
                           }),
               mutil::UsageError);
}

TEST(MrMpi, PhaseOrderEnforced) {
  simmpi::run_test(1, [](Context& ctx) {
    MapReduce mr(ctx, {});
    EXPECT_THROW(mr.aggregate(), mutil::UsageError);
    EXPECT_THROW(mr.convert(), mutil::UsageError);
    EXPECT_THROW(mr.reduce(wc_reduce), mutil::UsageError);
    mr.map_custom([](Emitter& out) { out.emit("k", "v"); });
    EXPECT_THROW(mr.reduce(wc_reduce), mutil::UsageError)
        << "reduce before convert must fail";
  });
}

TEST(MrMpi, MapKvSupportsIterativeJobs) {
  simmpi::run_test(2, [](Context& ctx) {
    MapReduce mr(ctx, {});
    mr.map_custom([&](Emitter& out) {
      if (ctx.rank() == 0) {
        for (int i = 0; i < 8; ++i) {
          out.emit("n" + std::to_string(i), mimir::as_view(kOne));
        }
      }
    });
    mr.aggregate();
    // Iterate: double every value's key id.
    mr.map_kv([](std::string_view key, std::string_view value,
                 Emitter& out) {
      const int n = std::stoi(std::string(key.substr(1)));
      out.emit("n" + std::to_string(2 * n), value);
    });
    mr.aggregate();
    std::uint64_t local = 0;
    mr.scan_kv([&](const KVView&) { ++local; });
    const auto total = ctx.comm.allreduce_u64(local, simmpi::Op::kSum);
    EXPECT_EQ(total, 8u);
  });
}

TEST(MrMpi, AggregateUsesSevenPagesOfMemory) {
  auto machine = simtime::MachineProfile::test_profile();
  machine.ranks_per_node = 1;
  pfs::FileSystem fs(machine, 1);
  constexpr std::uint64_t kPage = 4096;
  const auto stats = simmpi::run(1, machine, fs, [&](Context& ctx) {
    MRConfig cfg;
    cfg.page_size = kPage;
    MapReduce mr(ctx, cfg);
    mr.map_custom([](Emitter& out) { out.emit("k", "v"); });
    mr.aggregate();
  });
  // input(1) + send(1) + recv(2) + temp(2) + output(1) = 7 pages.
  EXPECT_EQ(stats.node_peak, 7 * kPage);
}

TEST(MrMpi, ConfigFromParsesKeys) {
  const auto cfg = mutil::Config::from_args(
      {"mrmpi.page_size=512K", "mrmpi.out_of_core=error"});
  const MRConfig mc = MRConfig::from(cfg);
  EXPECT_EQ(mc.page_size, 512u << 10);
  EXPECT_EQ(mc.out_of_core, OocMode::kError);
  EXPECT_THROW(MRConfig::from(mutil::Config::from_args(
                   {"mrmpi.out_of_core=bogus"})),
               mutil::ConfigError);
}

}  // namespace
