// Restart-from-scratch retry for the MR-MPI baseline.
#include "mrmpi/retry.hpp"

#include <gtest/gtest.h>

#include <map>
#include <mutex>
#include <string>

#include "inject/fault.hpp"
#include "mrmpi/mrmpi.hpp"
#include "mutil/error.hpp"

namespace {

using inject::FaultPlan;
using mrmpi::RetryOutcome;
using mrmpi::RetryPolicy;

constexpr int kRanks = 3;

simtime::MachineProfile profile_with_io() {
  auto machine = simtime::MachineProfile::test_profile();
  machine.pfs_latency = 1e-3;
  machine.pfs_bandwidth = 1e6;
  machine.pfs_client_bandwidth = 1e6;
  return machine;
}

/// Per-rank output, overwritten each attempt (a restart must not
/// double-count the attempt it replaced).
struct Sink {
  std::mutex mutex;
  std::map<int, std::map<std::string, std::uint64_t>> by_rank;

  std::map<std::string, std::uint64_t> merged() const {
    std::map<std::string, std::uint64_t> all;
    for (const auto& [rank, kvs] : by_rank) {
      for (const auto& [key, value] : kvs) all[key] += value;
    }
    return all;
  }
};

mrmpi::RetryBody wordcount(Sink& sink) {
  return [&sink](simmpi::Context& ctx) {
    mrmpi::MapReduce mr(ctx);
    const int rank = ctx.rank();
    mr.map_custom([rank](mimir::Emitter& out) {
      for (int i = 0; i < 500; ++i) {
        out.emit("w" + std::to_string((i * 13 + rank) % 59),
                 std::uint64_t{1});
      }
    });
    mr.aggregate();
    mr.convert();
    mr.reduce([](std::string_view key, mimir::ValueReader& values,
                 mimir::Emitter& out) {
      std::uint64_t total = 0;
      std::string_view v;
      while (values.next(v)) total += mimir::as_u64(v);
      out.emit(key, total);
    });
    std::map<std::string, std::uint64_t> mine;
    mr.scan_kv([&](const mimir::KVView& kv) {
      mine[std::string(kv.key)] += mimir::as_u64(kv.value);
    });
    const std::scoped_lock lock(sink.mutex);
    sink.by_rank[rank] = std::move(mine);
  };
}

TEST(MrMpiRetry, CompletesWithoutFaultsInOneAttempt) {
  const auto machine = profile_with_io();
  pfs::FileSystem fs(machine, kRanks);
  Sink sink;
  const RetryOutcome out =
      mrmpi::run_with_retry(kRanks, machine, fs, wordcount(sink));
  EXPECT_EQ(out.attempts, 1);
  EXPECT_DOUBLE_EQ(out.total_backoff, 0.0);
  ASSERT_EQ(out.history.size(), 1u);
  EXPECT_TRUE(out.history[0].ok);
  EXPECT_EQ(sink.merged().size(), 59u);
}

TEST(MrMpiRetry, RankCrashRestartsFromScratchWithSameOutput) {
  const auto machine = profile_with_io();
  const FaultPlan plan = FaultPlan::parse("rank_crash:1@reduce");

  Sink expected;
  {
    pfs::FileSystem fs(machine, kRanks);
    (void)mrmpi::run_with_retry(kRanks, machine, fs, wordcount(expected));
  }

  pfs::FileSystem fs(machine, kRanks);
  Sink sink;
  const RetryOutcome out = mrmpi::run_with_retry(
      kRanks, machine, fs, wordcount(sink), {}, &plan);
  EXPECT_EQ(out.attempts, 2);
  ASSERT_EQ(out.history.size(), 2u);
  EXPECT_FALSE(out.history[0].ok);
  EXPECT_EQ(out.history[0].failed_rank, 1);
  EXPECT_DOUBLE_EQ(out.history[0].backoff, 0.5);
  EXPECT_TRUE(out.history[1].ok);
  EXPECT_DOUBLE_EQ(out.total_backoff, 0.5);
  EXPECT_GE(out.stats.sim_time, 0.5) << "backoff rides the simulated clock";
  EXPECT_EQ(sink.merged(), expected.merged());
}

TEST(MrMpiRetry, NodeCrashKillsTheGroupAndRestarts) {
  auto machine = profile_with_io();
  machine.ranks_per_node = 2;
  const FaultPlan plan = FaultPlan::parse("node_crash:0@aggregate");

  pfs::FileSystem fs(machine, 4);
  Sink sink;
  const RetryOutcome out =
      mrmpi::run_with_retry(4, machine, fs, wordcount(sink), {}, &plan);
  EXPECT_EQ(out.attempts, 2);
  const int failed = out.history[0].failed_rank;
  EXPECT_TRUE(failed == 0 || failed == 1)
      << "node 0 hosts ranks 0 and 1, got " << failed;
  EXPECT_EQ(sink.merged().size(), 59u);
}

TEST(MrMpiRetry, RetriesExhaustedRethrows) {
  const auto machine = profile_with_io();
  const FaultPlan plan =
      FaultPlan::parse("rank_crash:0@map#1,rank_crash:0@map#2");
  RetryPolicy policy;
  policy.max_attempts = 2;

  pfs::FileSystem fs(machine, kRanks);
  Sink sink;
  EXPECT_THROW(mrmpi::run_with_retry(kRanks, machine, fs, wordcount(sink),
                                     policy, &plan),
               mutil::RankFailedError);
}

TEST(MrMpiRetry, UsageErrorsAreNeverRetried) {
  const auto machine = profile_with_io();
  pfs::FileSystem fs(machine, 1);
  EXPECT_THROW(
      mrmpi::run_with_retry(1, machine, fs,
                            [](simmpi::Context& ctx) {
                              mrmpi::MapReduce mr(ctx);
                              mr.aggregate();  // no KV data: caller bug
                            }),
      mutil::UsageError);
}

}  // namespace
