#include "mrmpi/paged_data.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "mutil/error.hpp"

namespace {

using mrmpi::OocMode;
using mrmpi::PagedData;

std::span<const std::byte> as_bytes(std::string_view s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

std::string collect(const PagedData& store) {
  std::string out;
  store.stream([&](std::span<const std::byte> segment) {
    out.append(reinterpret_cast<const char*>(segment.data()),
               segment.size());
  });
  return out;
}

TEST(PagedData, PageChargedUpFront) {
  simmpi::run_test(1, [](simmpi::Context& ctx) {
    const auto before = ctx.tracker.current();
    PagedData store(ctx, "t/a", 4096, OocMode::kSpill);
    EXPECT_EQ(ctx.tracker.current(), before + 4096)
        << "MR-MPI allocates the full page immediately";
  });
}

TEST(PagedData, InMemoryRoundTrip) {
  simmpi::run_test(1, [](simmpi::Context& ctx) {
    PagedData store(ctx, "t/a", 4096, OocMode::kSpill);
    store.append(as_bytes("hello"));
    store.append(as_bytes("world"));
    store.freeze();
    EXPECT_FALSE(store.spilled());
    EXPECT_EQ(store.num_records(), 2u);
    EXPECT_EQ(collect(store), "helloworld");
  });
}

TEST(PagedData, SpillsWhenPageOverflows) {
  simmpi::run_test(1, [](simmpi::Context& ctx) {
    PagedData store(ctx, "t/spill", 64, OocMode::kSpill);
    std::string all;
    for (int i = 0; i < 20; ++i) {
      const std::string rec = "record" + std::to_string(i) + ";";
      store.append(as_bytes(rec));
      all += rec;
    }
    store.freeze();
    EXPECT_TRUE(store.spilled());
    EXPECT_EQ(collect(store), all);
    // Memory stays at exactly one page regardless of data volume.
    EXPECT_EQ(ctx.tracker.current(), 64u);
  });
}

TEST(PagedData, AlwaysModePutsEverythingOnDisk) {
  simmpi::run_test(1, [](simmpi::Context& ctx) {
    PagedData store(ctx, "t/always", 4096, OocMode::kAlways);
    store.append(as_bytes("abc"));
    store.freeze();
    EXPECT_TRUE(store.spilled());
    EXPECT_EQ(store.spilled_bytes(), 3u);
    EXPECT_EQ(collect(store), "abc");
  });
}

TEST(PagedData, ErrorModeRefusesToSpill) {
  EXPECT_THROW(
      simmpi::run_test(1,
                       [](simmpi::Context& ctx) {
                         PagedData store(ctx, "t/err", 32, OocMode::kError);
                         for (int i = 0; i < 10; ++i) {
                           store.append(as_bytes("0123456789"));
                         }
                       }),
      mutil::UsageError);
}

TEST(PagedData, RecordLargerThanPageAlwaysRejected) {
  EXPECT_THROW(
      simmpi::run_test(1,
                       [](simmpi::Context& ctx) {
                         PagedData store(ctx, "t/big", 16, OocMode::kSpill);
                         store.append(as_bytes(std::string(100, 'x')));
                       }),
      mutil::UsageError);
}

TEST(PagedData, StreamChargesPfsCostForSpilledData) {
  auto machine = simtime::MachineProfile::test_profile();
  machine.pfs_latency = 0.01;
  machine.pfs_bandwidth = 1e6;
  pfs::FileSystem fs(machine, 1);
  simmpi::run(1, machine, fs, [](simmpi::Context& ctx) {
    PagedData store(ctx, "t/cost", 64, OocMode::kSpill);
    for (int i = 0; i < 30; ++i) store.append(as_bytes("0123456789"));
    store.freeze();
    const double before = ctx.clock().now();
    (void)collect(store);
    EXPECT_GT(ctx.clock().now(), before + 0.01)
        << "re-reading spilled segments must pay PFS latency";
  });
}

TEST(PagedData, RepeatedStreamsReReadSpill) {
  auto machine = simtime::MachineProfile::test_profile();
  machine.pfs_latency = 0.0;
  machine.pfs_bandwidth = 1e3;
  pfs::FileSystem fs(machine, 1);
  simmpi::run(1, machine, fs, [](simmpi::Context& ctx) {
    PagedData store(ctx, "t/rr", 64, OocMode::kSpill);
    for (int i = 0; i < 30; ++i) store.append(as_bytes("0123456789"));
    store.freeze();
    const double t0 = ctx.clock().now();
    (void)collect(store);
    const double first_read = ctx.clock().now() - t0;
    const double t1 = ctx.clock().now();
    (void)collect(store);
    const double second_read = ctx.clock().now() - t1;
    EXPECT_GT(first_read, 0.0);
    EXPECT_NEAR(second_read, first_read, first_read * 0.01)
        << "every pass over spilled data costs the same I/O again";
  });
}

TEST(PagedData, ClearRemovesSpillFileAndMemory) {
  simmpi::run_test(1, [](simmpi::Context& ctx) {
    PagedData store(ctx, "t/clear", 32, OocMode::kSpill);
    for (int i = 0; i < 10; ++i) store.append(as_bytes("0123456789"));
    EXPECT_TRUE(ctx.fs.exists("t/clear"));
    store.clear();
    EXPECT_FALSE(ctx.fs.exists("t/clear"));
    EXPECT_EQ(ctx.tracker.current(), 0u);
  });
}

TEST(PagedData, AppendAfterFreezeRejected) {
  EXPECT_THROW(
      simmpi::run_test(1,
                       [](simmpi::Context& ctx) {
                         PagedData store(ctx, "t/fr", 64, OocMode::kSpill);
                         store.freeze();
                         store.append(as_bytes("x"));
                       }),
      mutil::UsageError);
}

}  // namespace
