// Bench harness behaviors that tests can pin down without running a
// full figure: repeated-run peak isolation and schema-2 report fields.
#include "harness.hpp"

#include <gtest/gtest.h>

#include "memtrack/tracker.hpp"

namespace {

simtime::MachineProfile two_per_node() {
  auto machine = simtime::MachineProfile::test_profile();
  machine.ranks_per_node = 2;
  return machine;
}

TEST(RunRepeated, LastRepetitionPeakIsIndependentOfWarmup) {
  // Rep 0 spikes 1 MB per rank; rep 1 allocates 1 KB. The reported peak
  // must reflect the measured (last) repetition only — the warm-up
  // high-water mark is reset away.
  const auto machine = two_per_node();
  pfs::FileSystem fs(machine, 2);
  const auto outcome = bench::run_repeated(
      2, machine, fs, 2,
      [](simmpi::Context& ctx, int rep) {
        const std::size_t bytes = rep == 0 ? (1u << 20) : (1u << 10);
        const memtrack::TrackedBuffer buf(ctx.tracker, bytes);
        ctx.clock().advance(1.0);
        ctx.comm.barrier();
        return false;
      });
  ASSERT_TRUE(outcome.ok());
  EXPECT_GE(outcome.peak, 1u << 10);
  EXPECT_LE(outcome.peak, 4u << 10) << "warm-up spike leaked into peak";
}

TEST(RunRepeated, TimeCoversOnlyTheMeasuredRepetition) {
  const auto machine = two_per_node();
  pfs::FileSystem fs(machine, 2);
  const auto outcome = bench::run_repeated(
      2, machine, fs, 3,
      [](simmpi::Context& ctx, int) {
        ctx.clock().advance(1.0);
        ctx.comm.barrier();
        return false;
      });
  ASSERT_TRUE(outcome.ok());
  // Three reps ran (total simulated time >= 3s) but the measurement is
  // the last one: ~1s plus collective latency, not ~3s.
  EXPECT_GE(outcome.time, 1.0);
  EXPECT_LT(outcome.time, 2.0);
}

TEST(RunRepeated, SingleRepetitionMeasuresTheWholeRun) {
  const auto machine = two_per_node();
  pfs::FileSystem fs(machine, 2);
  const auto outcome = bench::run_repeated(
      2, machine, fs, 1,
      [](simmpi::Context& ctx, int) {
        ctx.clock().advance(2.0);
        return false;
      });
  ASSERT_TRUE(outcome.ok());
  EXPECT_GE(outcome.time, 2.0);
}

TEST(RunRepeated, SpillAndOomStatusesSurvive) {
  const auto machine = two_per_node();
  {
    pfs::FileSystem fs(machine, 1);
    const auto outcome = bench::run_repeated(
        1, machine, fs, 2,
        [](simmpi::Context&, int rep) { return rep == 0; });
    EXPECT_EQ(outcome.status, bench::Outcome::Status::kSpilled);
  }
  auto limited = machine;
  limited.node_memory = 1 << 10;
  pfs::FileSystem fs(limited, 1);
  const auto outcome = bench::run_repeated(
      1, limited, fs, 2,
      [](simmpi::Context& ctx, int) {
        const memtrack::TrackedBuffer buf(ctx.tracker, 1 << 20);
        return false;
      });
  EXPECT_EQ(outcome.status, bench::Outcome::Status::kOom);
}

}  // namespace
