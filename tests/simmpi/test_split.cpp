#include <gtest/gtest.h>

#include "mutil/error.hpp"
#include "simmpi/runtime.hpp"

namespace {

using simmpi::Context;
using simmpi::Op;

TEST(CommSplit, ParityGroupsGetOwnRanks) {
  simmpi::run_test(6, [](Context& ctx) {
    auto sub = ctx.comm.split(ctx.rank() % 2, ctx.rank());
    EXPECT_EQ(sub->size(), 3);
    EXPECT_EQ(sub->rank(), ctx.rank() / 2);
  });
}

TEST(CommSplit, KeyControlsOrdering) {
  simmpi::run_test(4, [](Context& ctx) {
    // Reverse the ordering within one group of everyone.
    auto sub = ctx.comm.split(0, ctx.size() - ctx.rank());
    EXPECT_EQ(sub->size(), ctx.size());
    EXPECT_EQ(sub->rank(), ctx.size() - 1 - ctx.rank());
  });
}

TEST(CommSplit, CollectivesAreGroupLocal) {
  simmpi::run_test(6, [](Context& ctx) {
    const int color = ctx.rank() < 2 ? 0 : 1;  // groups of 2 and 4
    auto sub = ctx.comm.split(color, ctx.rank());
    // Sum of new ranks within the group.
    const auto sum = sub->allreduce_i64(sub->rank(), Op::kSum);
    if (color == 0) {
      EXPECT_EQ(sum, 0 + 1);
    } else {
      EXPECT_EQ(sum, 0 + 1 + 2 + 3);
    }
    // Gather within the group only.
    const auto all = sub->allgather_i64(ctx.rank());
    EXPECT_EQ(all.size(), static_cast<std::size_t>(sub->size()));
  });
}

TEST(CommSplit, ParentStillUsableAfterSplit) {
  simmpi::run_test(4, [](Context& ctx) {
    auto sub = ctx.comm.split(ctx.rank() % 2, 0);
    EXPECT_EQ(sub->allreduce_i64(1, Op::kSum), 2);
    // Interleave parent and child collectives.
    EXPECT_EQ(ctx.comm.allreduce_i64(1, Op::kSum), 4);
    EXPECT_EQ(sub->allreduce_i64(2, Op::kSum), 4);
    ctx.comm.barrier();
  });
}

TEST(CommSplit, ChildSharesParentsClock) {
  auto machine = simtime::MachineProfile::test_profile();
  machine.net_latency = 0.5;
  pfs::FileSystem fs(machine, 2);
  simmpi::run(2, machine, fs, [](Context& ctx) {
    auto sub = ctx.comm.split(0, ctx.rank());
    const double before = ctx.clock().now();
    sub->barrier();
    EXPECT_GT(ctx.clock().now(), before)
        << "sub-communicator costs must land on the rank's one timeline";
  });
}

TEST(CommSplit, RepeatedSplitsAndNesting) {
  simmpi::run_test(8, [](Context& ctx) {
    auto half = ctx.comm.split(ctx.rank() / 4, ctx.rank());
    EXPECT_EQ(half->size(), 4);
    auto quarter = half->split(half->rank() / 2, half->rank());
    EXPECT_EQ(quarter->size(), 2);
    EXPECT_EQ(quarter->allreduce_i64(1, Op::kSum), 2);
    // A second split of the root with the same colors must not collide
    // with the first one's rendezvous.
    auto again = ctx.comm.split(ctx.rank() / 4, ctx.rank());
    EXPECT_EQ(again->size(), 4);
  });
}

TEST(CommSplit, AbortWakesRanksInsideSubCommunicators) {
  EXPECT_THROW(
      simmpi::run_test(4,
                       [](Context& ctx) {
                         auto sub = ctx.comm.split(ctx.rank() % 2, 0);
                         if (ctx.rank() == 0) {
                           throw mutil::Error("boom inside split world");
                         }
                         // Blocked in a child barrier that can never
                         // complete (rank 0 died); the cascading abort
                         // must free it.
                         sub->barrier();
                         sub->barrier();
                         ctx.comm.barrier();
                       }),
      mutil::Error);
}

TEST(CommSplit, SingletonGroups) {
  simmpi::run_test(3, [](Context& ctx) {
    auto solo = ctx.comm.split(ctx.rank(), 0);  // every rank its own group
    EXPECT_EQ(solo->size(), 1);
    EXPECT_EQ(solo->rank(), 0);
    EXPECT_EQ(solo->allreduce_i64(7, Op::kSum), 7);
  });
}

}  // namespace
