// Non-blocking collectives: payload/ordering semantics of ialltoallv
// and iallreduce_u64, the clock model (immediate wait reproduces the
// blocking collective's time; in-flight compute hides communication and
// is attributed as overlap, not wait), request handles across ranks,
// and error paths (kind mismatch, receive-buffer overflow, abort wake).
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "mutil/error.hpp"
#include "simmpi/runtime.hpp"
#include "stats/trace.hpp"

namespace {

using simmpi::Context;
using simmpi::Op;
using simmpi::Request;

class NonblockingTest : public ::testing::TestWithParam<int> {};

TEST_P(NonblockingTest, IalltoallvDeliversInSourceRankOrder) {
  const int p = GetParam();
  simmpi::run_test(p, [](Context& ctx) {
    const int r = ctx.rank();
    const int n = ctx.size();
    // Rank r sends (r + 1) bytes of value 10*r + dst to every dst.
    const std::uint64_t chunk = static_cast<std::uint64_t>(r) + 1;
    std::vector<std::byte> send(chunk * static_cast<std::uint64_t>(n));
    std::vector<std::uint64_t> counts(n, chunk), displs(n, 0);
    for (int dst = 0; dst < n; ++dst) {
      displs[dst] = chunk * static_cast<std::uint64_t>(dst);
      std::memset(send.data() + displs[dst], 10 * r + dst, chunk);
    }
    // Receive capacity for the worst case: every source is rank n-1.
    std::vector<std::byte> recv(static_cast<std::size_t>(n) *
                                static_cast<std::size_t>(n));
    Request req = ctx.comm.ialltoallv(send, counts, displs, recv);
    req.wait();

    // Counts are discovered at completion; payload is packed
    // contiguously in source-rank order.
    ASSERT_EQ(req.recv_counts().size(), static_cast<std::size_t>(n));
    std::uint64_t offset = 0;
    for (int src = 0; src < n; ++src) {
      const std::uint64_t len = static_cast<std::uint64_t>(src) + 1;
      EXPECT_EQ(req.recv_counts()[src], len);
      for (std::uint64_t i = 0; i < len; ++i) {
        EXPECT_EQ(std::to_integer<int>(recv[offset + i]), 10 * src + r);
      }
      offset += len;
    }
    EXPECT_EQ(req.bytes_received(), offset);
    EXPECT_EQ(req.bytes_sent(), chunk * static_cast<std::uint64_t>(n));
  });
}

TEST_P(NonblockingTest, IallreduceReducesLikeBlocking) {
  const int p = GetParam();
  simmpi::run_test(p, [](Context& ctx) {
    const auto r = static_cast<std::uint64_t>(ctx.rank());
    const auto n = static_cast<std::uint64_t>(ctx.size());
    Request sum = ctx.comm.iallreduce_u64(r + 1, Op::kSum);
    Request lor = ctx.comm.iallreduce_u64(ctx.rank() == 0 ? 1 : 0, Op::kLor);
    Request max = ctx.comm.iallreduce_u64(r, Op::kMax);
    sum.wait();
    lor.wait();
    max.wait();
    EXPECT_EQ(sum.value(), n * (n + 1) / 2);
    EXPECT_EQ(lor.value(), 1u);
    EXPECT_EQ(max.value(), n - 1);
  });
}

TEST_P(NonblockingTest, ImmediateWaitMatchesBlockingClock) {
  const int p = GetParam();
  const auto payload = [](Context& ctx) {
    const int n = ctx.size();
    // Skew entry clocks so the rendezvous max matters.
    ctx.clock().advance(0.25 * ctx.rank());
    std::vector<std::byte> send(16 * static_cast<std::size_t>(n));
    std::vector<std::byte> recv(16 * static_cast<std::size_t>(n));
    std::vector<std::uint64_t> counts(n, 16), displs(n, 0);
    for (int i = 0; i < n; ++i) {
      displs[i] = 16 * static_cast<std::uint64_t>(i);
    }
    return std::tuple{send, recv, counts, displs};
  };
  const auto blocking = simmpi::run_test(p, [&](Context& ctx) {
    auto [send, recv, counts, displs] = payload(ctx);
    ctx.comm.alltoallv(send, counts, displs, recv, counts, displs);
    (void)ctx.comm.allreduce_u64(1, Op::kSum);
  });
  const auto overlapped = simmpi::run_test(p, [&](Context& ctx) {
    auto [send, recv, counts, displs] = payload(ctx);
    Request data = ctx.comm.ialltoallv(send, counts, displs, recv);
    data.wait();
    Request red = ctx.comm.iallreduce_u64(1, Op::kSum);
    red.wait();
  });
  EXPECT_DOUBLE_EQ(overlapped.sim_time, blocking.sim_time);
}

TEST_P(NonblockingTest, InFlightComputeHidesCommunicationAsOverlap) {
  const int p = GetParam();
  stats::Collector collector;
  double hidden_at_rank0 = 0.0;
  simmpi::run_test(
      p,
      [&](Context& ctx) {
        const int n = ctx.size();
        std::vector<std::byte> send(1024 * static_cast<std::size_t>(n));
        std::vector<std::byte> recv(1024 * static_cast<std::size_t>(n));
        std::vector<std::uint64_t> counts(n, 1024), displs(n, 0);
        for (int i = 0; i < n; ++i) {
          displs[i] = 1024 * static_cast<std::uint64_t>(i);
        }
        Request req = ctx.comm.ialltoallv(send, counts, displs, recv);
        // Compute long past the operation's completion time: the wait
        // must neither block nor advance the clock further. The barrier
        // orders every initiation before test() in real time (test()
        // itself never blocks).
        ctx.clock().advance(100.0);
        ctx.comm.barrier();
        EXPECT_TRUE(req.test());
        const double before = ctx.clock().now();
        req.wait();
        EXPECT_DOUBLE_EQ(ctx.clock().now(), before);
        if (ctx.rank() == 0) hidden_at_rank0 = ctx.clock().now();
      },
      &collector);
  (void)hidden_at_rank0;
  const stats::Summary summary = collector.summary();
  // The whole in-flight interval was hidden: overlap recorded, no wait.
  EXPECT_GT(summary.overlap_total, 0.0);
  EXPECT_DOUBLE_EQ(summary.wait_total, 0.0);
}

TEST_P(NonblockingTest, WaitIsIdempotentAndMovable) {
  const int p = GetParam();
  simmpi::run_test(p, [](Context& ctx) {
    Request a = ctx.comm.iallreduce_u64(2, Op::kSum);
    Request b = std::move(a);
    EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move)
    b.wait();
    b.wait();
    EXPECT_EQ(b.value(),
              2 * static_cast<std::uint64_t>(ctx.size()));
    EXPECT_TRUE(b.done());
  });
}

TEST(NonblockingSingleRank, CompletesAtInitiation) {
  simmpi::run_test(1, [](Context& ctx) {
    std::vector<std::byte> send(8, std::byte{42});
    std::vector<std::byte> recv(8);
    const std::vector<std::uint64_t> counts{8}, displs{0};
    Request req = ctx.comm.ialltoallv(send, counts, displs, recv);
    EXPECT_TRUE(req.test());
    req.wait();
    EXPECT_EQ(req.bytes_received(), 8u);
    EXPECT_EQ(std::to_integer<int>(recv[0]), 42);
    Request red = ctx.comm.iallreduce_u64(7, Op::kMax);
    red.wait();
    EXPECT_EQ(red.value(), 7u);
  });
}

TEST(NonblockingErrors, KindMismatchAborts) {
  EXPECT_THROW(
      simmpi::run_test(2,
                       [](Context& ctx) {
                         if (ctx.rank() == 0) {
                           std::vector<std::byte> buf(2);
                           const std::vector<std::uint64_t> counts{1, 1},
                               displs{0, 1};
                           std::vector<std::byte> recv(2);
                           Request r = ctx.comm.ialltoallv(buf, counts,
                                                           displs, recv);
                           r.wait();
                         } else {
                           Request r =
                               ctx.comm.iallreduce_u64(1, Op::kSum);
                           r.wait();
                         }
                       }),
      mutil::CommError);
}

TEST(NonblockingErrors, RecvBufferOverflowAborts) {
  EXPECT_THROW(
      simmpi::run_test(2,
                       [](Context& ctx) {
                         // Every rank sends 8 bytes to each peer but only
                         // provides 4 bytes of receive capacity.
                         std::vector<std::byte> send(16);
                         const std::vector<std::uint64_t> counts{8, 8},
                             displs{0, 8};
                         std::vector<std::byte> recv(4);
                         Request r = ctx.comm.ialltoallv(send, counts,
                                                         displs, recv);
                         r.wait();
                       }),
      mutil::CommError);
}

TEST(NonblockingErrors, SendRegionOutOfBoundsThrows) {
  EXPECT_THROW(
      simmpi::run_test(2,
                       [](Context& ctx) {
                         std::vector<std::byte> send(4);  // too small
                         const std::vector<std::uint64_t> counts{8, 8},
                             displs{0, 8};
                         std::vector<std::byte> recv(16);
                         Request r = ctx.comm.ialltoallv(send, counts,
                                                         displs, recv);
                         r.wait();
                       }),
      mutil::CommError);
}

TEST(NonblockingErrors, PeerFailureWakesWaiter) {
  // Rank 1 dies before initiating; rank 0's wait can never complete and
  // must unwind through the abort channel instead of hanging.
  EXPECT_THROW(
      simmpi::run_test(2,
                       [](Context& ctx) {
                         if (ctx.rank() == 0) {
                           Request r =
                               ctx.comm.iallreduce_u64(1, Op::kSum);
                           r.wait();
                         } else {
                           throw mutil::UsageError("rank 1 dies");
                         }
                       }),
      mutil::UsageError);
}

INSTANTIATE_TEST_SUITE_P(RankCounts, NonblockingTest,
                         ::testing::Values(1, 2, 3, 4, 7));

}  // namespace
