#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "mutil/error.hpp"
#include "simmpi/runtime.hpp"

namespace {

using simmpi::Context;

std::span<const std::byte> as_bytes(std::string_view s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

std::string to_string(const std::vector<std::byte>& v) {
  return {reinterpret_cast<const char*>(v.data()), v.size()};
}

TEST(P2P, SendRecvDeliversPayload) {
  simmpi::run_test(2, [](Context& ctx) {
    if (ctx.rank() == 0) {
      ctx.comm.send(1, 7, as_bytes("ping"));
    } else {
      EXPECT_EQ(to_string(ctx.comm.recv(0, 7)), "ping");
    }
  });
}

TEST(P2P, TagsSelectMessages) {
  simmpi::run_test(2, [](Context& ctx) {
    if (ctx.rank() == 0) {
      ctx.comm.send(1, 1, as_bytes("one"));
      ctx.comm.send(1, 2, as_bytes("two"));
    } else {
      // Receive out of send order by tag.
      EXPECT_EQ(to_string(ctx.comm.recv(0, 2)), "two");
      EXPECT_EQ(to_string(ctx.comm.recv(0, 1)), "one");
    }
  });
}

TEST(P2P, FifoPerSourceAndTag) {
  simmpi::run_test(2, [](Context& ctx) {
    if (ctx.rank() == 0) {
      for (int i = 0; i < 10; ++i) {
        ctx.comm.send(1, 0, as_bytes("msg" + std::to_string(i)));
      }
    } else {
      for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(to_string(ctx.comm.recv(0, 0)), "msg" + std::to_string(i));
      }
    }
  });
}

TEST(P2P, ManyToOne) {
  constexpr int kRanks = 6;
  simmpi::run_test(kRanks, [](Context& ctx) {
    if (ctx.rank() != 0) {
      ctx.comm.send(0, ctx.rank(), as_bytes(std::to_string(ctx.rank())));
    } else {
      for (int s = 1; s < ctx.size(); ++s) {
        EXPECT_EQ(to_string(ctx.comm.recv(s, s)), std::to_string(s));
      }
    }
  });
}

TEST(P2P, ReceiverClockSeesTransferTime) {
  auto machine = simtime::MachineProfile::test_profile();
  machine.net_latency = 0.25;
  machine.net_bandwidth = 100.0;
  pfs::FileSystem fs(machine, 2);
  simmpi::run(2, machine, fs, [](Context& ctx) {
    if (ctx.rank() == 0) {
      std::vector<std::byte> payload(50);  // 0.5 s at 100 B/s
      ctx.comm.send(1, 0, payload);
      EXPECT_DOUBLE_EQ(ctx.clock().now(), 0.75);
    } else {
      (void)ctx.comm.recv(0, 0);
      EXPECT_GE(ctx.clock().now(), 0.75);
    }
  });
}

TEST(P2P, InvalidRanksRejected) {
  EXPECT_THROW(simmpi::run_test(
                   1, [](Context& ctx) { ctx.comm.send(3, 0, {}); }),
               mutil::CommError);
  EXPECT_THROW(simmpi::run_test(
                   1, [](Context& ctx) { (void)ctx.comm.recv(-1, 0); }),
               mutil::CommError);
}

TEST(P2P, EmptyPayloadAllowed) {
  simmpi::run_test(2, [](Context& ctx) {
    if (ctx.rank() == 0) {
      ctx.comm.send(1, 0, {});
    } else {
      EXPECT_TRUE(ctx.comm.recv(0, 0).empty());
    }
  });
}

}  // namespace
