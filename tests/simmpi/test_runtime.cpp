#include <gtest/gtest.h>

#include <atomic>

#include "mutil/error.hpp"
#include "simmpi/runtime.hpp"

namespace {

using simmpi::Context;

TEST(Runtime, RanksSeeCorrectTopology) {
  auto machine = simtime::MachineProfile::test_profile();
  machine.ranks_per_node = 4;
  pfs::FileSystem fs(machine, 8);
  const auto stats = simmpi::run(8, machine, fs, [](Context& ctx) {
    EXPECT_EQ(ctx.size(), 8);
    EXPECT_EQ(ctx.node(), ctx.rank() / 4);
  });
  EXPECT_EQ(stats.ranks, 8);
  EXPECT_EQ(stats.nodes, 2);
  EXPECT_EQ(stats.node_peaks.size(), 2u);
}

TEST(Runtime, ExceptionAbortsWholeJobAndRethrows) {
  // Rank 1 throws while others sit in a barrier; nobody deadlocks and the
  // original exception type surfaces.
  EXPECT_THROW(simmpi::run_test(4,
                                [](Context& ctx) {
                                  if (ctx.rank() == 1) {
                                    throw mutil::OutOfMemoryError(
                                        "synthetic", 1, 1);
                                  }
                                  // Will be woken by the abort.
                                  ctx.comm.barrier();
                                  ctx.comm.barrier();
                                }),
               mutil::OutOfMemoryError);
}

TEST(Runtime, BlockedRecvWakesOnAbort) {
  EXPECT_THROW(simmpi::run_test(2,
                                [](Context& ctx) {
                                  if (ctx.rank() == 0) {
                                    throw mutil::Error("boom");
                                  }
                                  (void)ctx.comm.recv(0, 0);  // never sent
                                }),
               mutil::Error);
}

TEST(Runtime, NodeBudgetEnforcedPerNode) {
  auto machine = simtime::MachineProfile::test_profile();
  machine.ranks_per_node = 2;
  machine.node_memory = 1000;
  pfs::FileSystem fs(machine, 4);
  // Each rank allocates 600 bytes; two ranks share a 1000-byte node, so
  // every node blows its budget.
  EXPECT_THROW(
      simmpi::run(4, machine, fs,
                  [](Context& ctx) {
                    ctx.tracker.allocate(600);
                    ctx.comm.barrier();
                    ctx.tracker.allocate(600);
                    ctx.comm.barrier();
                    ctx.tracker.release(1200);
                  }),
      mutil::OutOfMemoryError);
}

TEST(Runtime, StatsAggregatePeaksAndTime) {
  auto machine = simtime::MachineProfile::test_profile();
  machine.ranks_per_node = 2;
  pfs::FileSystem fs(machine, 4);
  const auto stats = simmpi::run(4, machine, fs, [](Context& ctx) {
    ctx.tracker.allocate(100u * (static_cast<unsigned>(ctx.rank()) + 1));
    ctx.clock().advance(ctx.rank() == 3 ? 9.0 : 1.0);
    ctx.comm.barrier();
    ctx.tracker.release(100u * (static_cast<unsigned>(ctx.rank()) + 1));
  });
  // Node 0 holds ranks {0,1}: 100+200; node 1 holds {2,3}: 300+400.
  EXPECT_EQ(stats.node_peaks[0], 300u);
  EXPECT_EQ(stats.node_peaks[1], 700u);
  EXPECT_EQ(stats.node_peak, 700u);
  EXPECT_GE(stats.sim_time, 9.0);
}

TEST(Runtime, IoStatsAreDeltaPerJob) {
  auto machine = simtime::MachineProfile::test_profile();
  pfs::FileSystem fs(machine, 1);
  simtime::Clock setup_clock;
  fs.write_file("pre", "0123456789", setup_clock);

  const auto stats = simmpi::run(1, machine, fs, [](Context& ctx) {
    (void)ctx.fs.read_file("pre", ctx.clock());
  });
  EXPECT_EQ(stats.io.bytes_read, 10u);
  EXPECT_EQ(stats.io.bytes_written, 0u)
      << "setup writes must not count against the job";
}

TEST(Runtime, RejectsNonPositiveRankCount) {
  EXPECT_THROW(simmpi::run_test(0, [](Context&) {}), mutil::ConfigError);
}

TEST(Runtime, ManyRanksComplete) {
  // Smoke test that oversubscription works well past core count.
  std::atomic<int> count{0};
  simmpi::run_test(64, [&count](Context& ctx) {
    ctx.comm.barrier();
    count.fetch_add(1, std::memory_order_relaxed);
    EXPECT_EQ(ctx.comm.allreduce_i64(1, simmpi::Op::kSum), 64);
  });
  EXPECT_EQ(count.load(), 64);
}

}  // namespace
