#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <vector>

#include "mutil/error.hpp"
#include "simmpi/runtime.hpp"

namespace {

using simmpi::Context;
using simmpi::Op;

// Parameterized over rank counts, including non-powers of two.
class CollectiveTest : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveTest, BarrierSynchronizesClocks) {
  const int p = GetParam();
  simmpi::run_test(p, [](Context& ctx) {
    // Each rank starts with a different local time; barrier must bring
    // everyone to at least the max.
    ctx.clock().advance(ctx.rank() * 1.0);
    ctx.comm.barrier();
    EXPECT_GE(ctx.clock().now(), ctx.size() - 1.0);
  });
}

TEST_P(CollectiveTest, AllreduceSumMaxMin) {
  const int p = GetParam();
  simmpi::run_test(p, [](Context& ctx) {
    const int r = ctx.rank();
    const int n = ctx.size();
    EXPECT_EQ(ctx.comm.allreduce_i64(r, Op::kSum),
              static_cast<std::int64_t>(n) * (n - 1) / 2);
    EXPECT_EQ(ctx.comm.allreduce_i64(r, Op::kMax), n - 1);
    EXPECT_EQ(ctx.comm.allreduce_i64(r - 5, Op::kMin), -5);
    EXPECT_DOUBLE_EQ(ctx.comm.allreduce_f64(0.5, Op::kSum), 0.5 * n);
    EXPECT_EQ(ctx.comm.allreduce_u64(r + 1, Op::kMax),
              static_cast<std::uint64_t>(n));
  });
}

TEST_P(CollectiveTest, AllreduceLogicalOps) {
  const int p = GetParam();
  simmpi::run_test(p, [](Context& ctx) {
    const bool only_last = ctx.rank() == ctx.size() - 1;
    EXPECT_TRUE(ctx.comm.allreduce_lor(only_last));
    EXPECT_FALSE(ctx.comm.allreduce_lor(false));
    EXPECT_FALSE(ctx.comm.allreduce_land(only_last) && ctx.size() > 1);
    EXPECT_TRUE(ctx.comm.allreduce_land(true));
  });
}

TEST_P(CollectiveTest, AllgatherCollectsInRankOrder) {
  const int p = GetParam();
  simmpi::run_test(p, [](Context& ctx) {
    const auto values = ctx.comm.allgather_i64(ctx.rank() * 10);
    ASSERT_EQ(values.size(), static_cast<std::size_t>(ctx.size()));
    for (int i = 0; i < ctx.size(); ++i) {
      EXPECT_EQ(values[static_cast<std::size_t>(i)], i * 10);
    }
  });
}

TEST_P(CollectiveTest, BcastDistributesRootValue) {
  const int p = GetParam();
  simmpi::run_test(p, [](Context& ctx) {
    const int root = ctx.size() - 1;
    EXPECT_EQ(ctx.comm.bcast_u64(ctx.rank() == root ? 777u : 0u, root),
              777u);
    std::vector<std::byte> buf(16);
    if (ctx.rank() == root) {
      std::memset(buf.data(), 0x5a, buf.size());
    }
    ctx.comm.bcast(buf, root);
    for (const auto b : buf) {
      EXPECT_EQ(static_cast<unsigned char>(b), 0x5a);
    }
  });
}

TEST_P(CollectiveTest, AlltoallU64Transposes) {
  const int p = GetParam();
  simmpi::run_test(p, [](Context& ctx) {
    const int r = ctx.rank();
    const int n = ctx.size();
    // values[d] = r * 100 + d; after exchange, result[s] = s * 100 + r.
    std::vector<std::uint64_t> values(static_cast<std::size_t>(n));
    for (int d = 0; d < n; ++d) {
      values[static_cast<std::size_t>(d)] =
          static_cast<std::uint64_t>(r * 100 + d);
    }
    const auto result = ctx.comm.alltoall_u64(values);
    ASSERT_EQ(result.size(), static_cast<std::size_t>(n));
    for (int s = 0; s < n; ++s) {
      EXPECT_EQ(result[static_cast<std::size_t>(s)],
                static_cast<std::uint64_t>(s * 100 + r));
    }
  });
}

TEST_P(CollectiveTest, AlltoallvMovesVariableBlocks) {
  const int p = GetParam();
  simmpi::run_test(p, [](Context& ctx) {
    const int r = ctx.rank();
    const int n = ctx.size();
    // Rank r sends (d + 1) copies of byte value r to rank d.
    std::vector<std::uint64_t> send_counts(static_cast<std::size_t>(n));
    std::vector<std::uint64_t> send_displs(static_cast<std::size_t>(n));
    std::uint64_t total = 0;
    for (int d = 0; d < n; ++d) {
      send_displs[static_cast<std::size_t>(d)] = total;
      send_counts[static_cast<std::size_t>(d)] =
          static_cast<std::uint64_t>(d + 1);
      total += static_cast<std::uint64_t>(d + 1);
    }
    std::vector<std::byte> send(total, static_cast<std::byte>(r));

    const auto recv_counts = ctx.comm.alltoall_u64(send_counts);
    std::vector<std::uint64_t> recv_displs(static_cast<std::size_t>(n));
    std::uint64_t recv_total = 0;
    for (int s = 0; s < n; ++s) {
      recv_displs[static_cast<std::size_t>(s)] = recv_total;
      recv_total += recv_counts[static_cast<std::size_t>(s)];
    }
    // Everyone sends me (r + 1) bytes.
    EXPECT_EQ(recv_total, static_cast<std::uint64_t>(n) * (r + 1));
    std::vector<std::byte> recv(recv_total);
    ctx.comm.alltoallv(send, send_counts, send_displs, recv, recv_counts,
                       recv_displs);
    for (int s = 0; s < n; ++s) {
      for (std::uint64_t i = 0; i < recv_counts[static_cast<std::size_t>(s)];
           ++i) {
        EXPECT_EQ(static_cast<int>(
                      recv[recv_displs[static_cast<std::size_t>(s)] + i]),
                  s);
      }
    }
    EXPECT_GE(ctx.comm.stats().bytes_sent, total);
  });
}

TEST_P(CollectiveTest, GathervConcatenatesAtRoot) {
  const int p = GetParam();
  simmpi::run_test(p, [](Context& ctx) {
    const std::string mine(static_cast<std::size_t>(ctx.rank() + 1),
                           static_cast<char>('a' + ctx.rank() % 26));
    const auto result = ctx.comm.gatherv(
        0, std::span<const std::byte>(
               reinterpret_cast<const std::byte*>(mine.data()), mine.size()));
    if (ctx.rank() == 0) {
      ASSERT_EQ(result.counts.size(), static_cast<std::size_t>(ctx.size()));
      std::uint64_t offset = 0;
      for (int s = 0; s < ctx.size(); ++s) {
        EXPECT_EQ(result.counts[static_cast<std::size_t>(s)],
                  static_cast<std::uint64_t>(s + 1));
        for (std::uint64_t i = 0; i < result.counts[static_cast<std::size_t>(s)]; ++i) {
          EXPECT_EQ(static_cast<char>(result.data[offset + i]),
                    static_cast<char>('a' + s % 26));
        }
        offset += result.counts[static_cast<std::size_t>(s)];
      }
    } else {
      EXPECT_TRUE(result.data.empty());
    }
  });
}

TEST_P(CollectiveTest, RepeatedCollectivesStaySound) {
  const int p = GetParam();
  simmpi::run_test(p, [](Context& ctx) {
    // Stress generation handling: many back-to-back collectives.
    for (int i = 0; i < 50; ++i) {
      EXPECT_EQ(ctx.comm.allreduce_i64(1, Op::kSum), ctx.size());
      ctx.comm.barrier();
    }
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, CollectiveTest,
                         ::testing::Values(1, 2, 3, 4, 7, 16));

TEST(CollectiveErrors, AlltoallvChecksBounds) {
  EXPECT_THROW(
      simmpi::run_test(2,
                       [](Context& ctx) {
                         std::vector<std::byte> send(4), recv(4);
                         std::vector<std::uint64_t> counts{8, 8};  // > size
                         std::vector<std::uint64_t> displs{0, 0};
                         ctx.comm.alltoallv(send, counts, displs, recv,
                                            counts, displs);
                       }),
      mutil::CommError);
}

TEST(CollectiveErrors, BadRootRejected) {
  EXPECT_THROW(simmpi::run_test(
                   2, [](Context& ctx) { ctx.comm.bcast_u64(1, 5); }),
               mutil::CommError);
}

TEST(CollectiveClocks, AlltoallvChargesBytesOverBandwidth) {
  auto machine = simtime::MachineProfile::test_profile();
  machine.net_latency = 0.0;
  machine.net_bandwidth = 1000.0;  // 1000 B/s for easy math
  pfs::FileSystem fs(machine, 2);
  simmpi::run(2, machine, fs, [](Context& ctx) {
    std::vector<std::byte> send(2000), recv(2000);
    std::vector<std::uint64_t> counts{1000, 1000};
    std::vector<std::uint64_t> displs{0, 1000};
    ctx.comm.alltoallv(send, counts, displs, recv, counts, displs);
    // 2000 bytes at 1000 B/s = 2 simulated seconds.
    EXPECT_DOUBLE_EQ(ctx.clock().now(), 2.0);
  });
}

}  // namespace
