// Quickstart: WordCount in ~40 lines of user code.
//
// Demonstrates the minimal Mimir workflow: write input to the (simulated)
// parallel file system, run a job with a map and a reduce callback, and
// read the output KVs.
//
//   $ ./quickstart
#include <cstdio>

#include "mimir/mimir.hpp"
#include "simmpi/runtime.hpp"

int main() {
  // A 4-rank "job" on the test machine profile (unlimited memory).
  const auto machine = simtime::MachineProfile::test_profile();
  pfs::FileSystem fs(machine, /*num_clients=*/4);

  // Stage the input on the parallel file system (normally your data is
  // already there).
  simtime::Clock setup;
  fs.write_file("input/hello.txt",
                "the quick brown fox jumps over the lazy dog\n"
                "the dog barks\n",
                setup);
  const std::vector<std::string> files{"input/hello.txt"};

  // mimir: shared-ok — the captured file list is read-only
  simmpi::run(4, machine, fs, [&](simmpi::Context& ctx) {
    mimir::Job job(ctx);

    // Map: split each text chunk into words, emit (word, 1).
    job.map_text_files(files, [](std::string_view chunk,
                                 mimir::Emitter& out) {
      std::size_t start = 0;
      while (start < chunk.size()) {
        std::size_t stop = chunk.find_first_of(" \n", start);
        if (stop == std::string_view::npos) stop = chunk.size();
        if (stop > start) {
          out.emit(chunk.substr(start, stop - start), std::uint64_t{1});
        }
        start = stop + 1;
      }
    });

    // Reduce: sum the counts for each word.
    job.reduce([](std::string_view word, mimir::ValueReader& values,
                  mimir::Emitter& out) {
      std::uint64_t total = 0;
      std::string_view v;
      while (values.next(v)) total += mimir::as_u64(v);
      out.emit(word, total);
    });

    // Each rank owns the words that hash to it.
    job.output().scan([&](const mimir::KVView& kv) {
      std::printf("rank %d: %-8.*s %llu\n", ctx.rank(),
                  static_cast<int>(kv.key.size()), kv.key.data(),
                  static_cast<unsigned long long>(mimir::as_u64(kv.value)));
    });
  });
  return 0;
}
