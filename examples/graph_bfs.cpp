// Graph BFS CLI — the Graph500-style map-only benchmark.
//
// Usage:
//   ./graph_bfs [key=value ...]
//
// Keys: machine, ranks, scale (2^scale vertices), edge_factor,
//       framework=mimir|mrmpi, hint/cps, page, comm, seed.
#include <cstdio>
#include <string>

#include "apps/bfs.hpp"
#include "mutil/config.hpp"
#include "mutil/sizes.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  const auto cfg = mutil::Config::from_args(args);

  auto machine =
      simtime::MachineProfile::by_name(cfg.get_string("machine", "comet"));
  machine.apply_overrides(cfg);
  const int ranks =
      static_cast<int>(cfg.get_int("ranks", machine.ranks_per_node));

  apps::bfs::RunOptions opts;
  opts.scale = static_cast<int>(cfg.get_int("scale", 12));
  opts.edge_factor = static_cast<int>(cfg.get_int("edge_factor", 16));
  opts.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 3));
  opts.page_size = cfg.get_size("page", 64 << 10);
  opts.comm_buffer = cfg.get_size("comm", 64 << 10);
  opts.hint = cfg.get_bool("hint", false);
  opts.cps = cfg.get_bool("cps", false);
  const bool mrmpi = cfg.get_string("framework", "mimir") == "mrmpi";

  pfs::FileSystem fs(machine, ranks);
  apps::bfs::Result result;
  const auto stats = simmpi::run(ranks, machine, fs,
                                 // mimir: shared-ok — only rank 0 writes the capture
                                 [&](simmpi::Context& ctx) {
                                   // Only rank 0 writes the shared capture.
                                   auto r =
                                       mrmpi ? apps::bfs::run_mrmpi(ctx, opts)
                                             : apps::bfs::run_mimir(ctx, opts);
                                   if (ctx.rank() == 0) result = r;
                                 });

  std::printf("BFS (%s, %s)\n", mrmpi ? "MR-MPI" : "Mimir",
              machine.name.c_str());
  std::printf("  vertices          : 2^%d\n", opts.scale);
  std::printf("  edges             : %llu\n",
              static_cast<unsigned long long>(opts.num_edges()));
  std::printf("  root              : %llu\n",
              static_cast<unsigned long long>(opts.root()));
  std::printf("  visited           : %llu\n",
              static_cast<unsigned long long>(result.visited));
  std::printf("  BFS levels        : %llu\n",
              static_cast<unsigned long long>(result.levels));
  std::printf("  checksum          : %016llx\n",
              static_cast<unsigned long long>(result.checksum));
  std::printf("  peak node memory  : %s\n",
              mutil::format_size(stats.node_peak).c_str());
  std::printf("  execution time    : %.3f simulated seconds\n",
              stats.sim_time);
  return 0;
}
