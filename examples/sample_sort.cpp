// Distributed sample sort CLI — demonstrates custom partitioners
// (paper §III-A: user-provided hash/routing functions).
//
// Usage: ./sample_sort [records=65536] [ranks=8] [framework=mimir|mrmpi]
#include <cstdio>
#include <string>

#include "apps/sort.hpp"
#include "mutil/config.hpp"
#include "mutil/sizes.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  const auto cfg = mutil::Config::from_args(args);

  auto machine =
      simtime::MachineProfile::by_name(cfg.get_string("machine", "comet"));
  machine.apply_overrides(cfg);
  const int ranks =
      static_cast<int>(cfg.get_int("ranks", machine.ranks_per_node));

  apps::sort::RunOptions opts;
  opts.num_records =
      static_cast<std::uint64_t>(cfg.get_int("records", 1 << 16));
  opts.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 17));
  opts.samples_per_rank =
      static_cast<int>(cfg.get_int("samples", 32));
  const bool mrmpi = cfg.get_string("framework", "mimir") == "mrmpi";

  pfs::FileSystem fs(machine, ranks);
  apps::sort::Result result;
  const auto stats =
      // mimir: shared-ok — only rank 0 writes the capture
      simmpi::run(ranks, machine, fs, [&](simmpi::Context& ctx) {
        // Only rank 0 writes the shared capture.
        auto r = mrmpi ? apps::sort::run_mrmpi(ctx, opts)
                       : apps::sort::run_mimir(ctx, opts);
        if (ctx.rank() == 0) result = r;
      });

  std::printf("Sample sort (%s, %s)\n", mrmpi ? "MR-MPI" : "Mimir",
              machine.name.c_str());
  std::printf("  records           : %llu\n",
              static_cast<unsigned long long>(result.records));
  std::printf("  globally sorted   : %s\n",
              result.globally_sorted ? "yes" : "NO");
  std::printf("  checksum          : %016llx (reference %016llx)\n",
              static_cast<unsigned long long>(result.checksum),
              static_cast<unsigned long long>(
                  apps::sort::reference_checksum(opts)));
  std::printf("  load imbalance    : %.2fx ideal\n", result.imbalance);
  std::printf("  peak node memory  : %s\n",
              mutil::format_size(stats.node_peak).c_str());
  std::printf("  execution time    : %.3f simulated seconds\n",
              stats.sim_time);
  return result.globally_sorted ? 0 : 1;
}
