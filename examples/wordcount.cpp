// WordCount CLI — the paper's primary benchmark as a standalone tool.
//
// Usage:
//   ./wordcount [key=value ...]
//
// Keys (defaults in parentheses):
//   machine=comet|mira|test  machine profile (comet)
//   ranks=N                  MPI ranks (machine's ranks_per_node)
//   dataset=uniform|wikipedia(uniform)
//   size=BYTES               total input size, e.g. 1M (1M)
//   framework=mimir|mrmpi    (mimir)
//   hint=0|1 pr=0|1 cps=0|1  Mimir optional optimizations (off)
//   overlap=0|1              double-buffered non-blocking shuffle (off)
//   prefetch=0|1             async I/O pipeline: pfs read-ahead (off)
//   page=BYTES comm=BYTES    page / comm buffer sizes (64K)
//   seed=N                   dataset seed (1)
#include <cstdio>
#include <string>

#include "apps/wordcount.hpp"
#include "check/race.hpp"
#include "mutil/config.hpp"
#include "mutil/sizes.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  const auto cfg = mutil::Config::from_args(args);

  auto machine =
      simtime::MachineProfile::by_name(cfg.get_string("machine", "comet"));
  machine.apply_overrides(cfg);
  const int ranks =
      static_cast<int>(cfg.get_int("ranks", machine.ranks_per_node));

  pfs::FileSystem fs(machine, ranks);
  apps::wc::GenOptions gen;
  gen.total_bytes = cfg.get_size("size", 1 << 20);
  gen.num_files = ranks;
  gen.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 1));
  const std::string dataset = cfg.get_string("dataset", "uniform");
  const auto files = dataset == "wikipedia"
                         ? apps::wc::generate_wikipedia(fs, "wc", gen)
                         : apps::wc::generate_uniform(fs, "wc", gen);

  apps::wc::RunOptions opts;
  opts.files = files;
  opts.page_size = cfg.get_size("page", 64 << 10);
  opts.comm_buffer = cfg.get_size("comm", 64 << 10);
  opts.hint = cfg.get_bool("hint", false);
  opts.pr = cfg.get_bool("pr", false);
  opts.cps = cfg.get_bool("cps", false);
  opts.overlap = cfg.get_bool("overlap", false);
  opts.prefetch = cfg.get_bool("prefetch", false);
  const bool mrmpi = cfg.get_string("framework", "mimir") == "mrmpi";

  // The cross-rank result goes through check::Shared<T>: under
  // mimir.race=1 / MIMIR_RACE every access is verified against the
  // happens-before discipline (only rank 0 writes, the driver reads
  // after the job), so the capture below is annotated shared-ok.
  check::Shared<apps::wc::Result> result("wordcount.result");
  const auto stats = simmpi::run(ranks, machine, fs,
                                 // mimir: shared-ok (check::Shared<T>)
                                 [&](simmpi::Context& ctx) {
                                   // Every rank computes the same (allreduced)
                                   // result; only rank 0 may write the shared
                                   // capture.
                                   auto r = mrmpi
                                               ? apps::wc::run_mrmpi(ctx, opts)
                                               : apps::wc::run_mimir(ctx, opts);
                                   if (ctx.rank() == 0) result.write(r);
                                 });
  const apps::wc::Result& res = result.unchecked();

  std::printf("WordCount (%s, %s, %s)\n", dataset.c_str(),
              mrmpi ? "MR-MPI" : "Mimir", machine.name.c_str());
  std::printf("  input size        : %s\n",
              mutil::format_size(gen.total_bytes).c_str());
  std::printf("  ranks             : %d\n", ranks);
  std::printf("  total words       : %llu\n",
              static_cast<unsigned long long>(res.total_words));
  std::printf("  unique words      : %llu\n",
              static_cast<unsigned long long>(res.unique_words));
  std::printf("  checksum          : %016llx\n",
              static_cast<unsigned long long>(res.checksum));
  std::printf("  peak node memory  : %s\n",
              mutil::format_size(stats.node_peak).c_str());
  std::printf("  execution time    : %.3f simulated seconds\n",
              stats.sim_time);
  std::printf("  shuffled bytes    : %s\n",
              mutil::format_size(stats.shuffle_bytes).c_str());
  return 0;
}
