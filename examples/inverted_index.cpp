// Inverted index — builds word -> sorted document-id postings from a
// corpus of documents on the parallel file system, demonstrating
// variable-length KMV value lists and the KV-hint for fixed-size
// values. Self-checking: verifies a few postings against a serial scan.
//
// Usage: ./inverted_index [docs=64] [ranks=8]
#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "mimir/mimir.hpp"
#include "mutil/config.hpp"
#include "mutil/random.hpp"
#include "simmpi/runtime.hpp"

namespace {

std::string make_document(std::uint64_t doc) {
  mutil::Xoshiro256 rng(doc * 7919 + 13);
  std::string text;
  for (int i = 0; i < 60; ++i) {
    text += "term" + std::to_string(rng.below(40));
    text += (i % 10 == 9) ? '\n' : ' ';
  }
  return text;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  const auto cfg = mutil::Config::from_args(args);
  const auto docs = static_cast<std::uint64_t>(cfg.get_int("docs", 64));
  const int ranks = static_cast<int>(cfg.get_int("ranks", 8));

  const auto machine = simtime::MachineProfile::test_profile();
  pfs::FileSystem fs(machine, ranks);

  // Stage the corpus and build the serial reference for spot checks.
  simtime::Clock setup;
  std::map<std::string, std::set<std::uint64_t>> reference;
  std::vector<std::string> files;
  for (std::uint64_t d = 0; d < docs; ++d) {
    const std::string text = make_document(d);
    const std::string name = "corpus/doc" + std::to_string(d);
    fs.write_file(name, text, setup);
    files.push_back(name);
    std::size_t pos = 0;
    while (pos < text.size()) {
      std::size_t end = text.find_first_of(" \n", pos);
      if (end == std::string::npos) end = text.size();
      if (end > pos) reference[text.substr(pos, end - pos)].insert(d);
      pos = end + 1;
    }
  }

  int failures = 0;
  // mimir: shared-ok — only rank 0 writes the capture
  simmpi::run(ranks, machine, fs, [&](simmpi::Context& ctx) {
    mimir::JobConfig jc;
    jc.hint = mimir::KVHint{mimir::KVHint::kString, 8};  // word -> doc id
    // The reduce output carries variable-length postings blobs.
    jc.output_hint = mimir::KVHint{mimir::KVHint::kString,
                                   mimir::KVHint::kVariable};

    mimir::Job job(ctx, jc);
    // Map: each rank indexes its share of documents (file i belongs to
    // rank i % p, and the doc id is recovered from the file name).
    job.map_custom([&](mimir::Emitter& out) {
      for (std::size_t i = static_cast<std::size_t>(ctx.rank());
           i < files.size(); i += static_cast<std::size_t>(ctx.size())) {
        const auto bytes = ctx.fs.read_file(files[i], ctx.clock());
        const std::string_view text(
            reinterpret_cast<const char*>(bytes.data()), bytes.size());
        const std::uint64_t doc = i;
        std::size_t pos = 0;
        while (pos < text.size()) {
          std::size_t end = text.find_first_of(" \n", pos);
          if (end == std::string_view::npos) end = text.size();
          if (end > pos) out.emit(text.substr(pos, end - pos), doc);
          pos = end + 1;
        }
      }
    });

    // Reduce: dedupe and sort each word's postings.
    job.reduce([](std::string_view word, mimir::ValueReader& values,
                  mimir::Emitter& out) {
      std::vector<std::uint64_t> postings;
      std::string_view v;
      while (values.next(v)) postings.push_back(mimir::as_u64(v));
      std::sort(postings.begin(), postings.end());
      postings.erase(std::unique(postings.begin(), postings.end()),
                     postings.end());
      out.emit(word,
               std::string_view(
                   reinterpret_cast<const char*>(postings.data()),
                   postings.size() * 8));
    });

    // Spot-check this rank's postings against the serial reference.
    int local_failures = 0;
    std::uint64_t local_words = 0;
    job.output().scan([&](const mimir::KVView& kv) {
      ++local_words;
      const auto& expected = reference.at(std::string(kv.key));
      const std::size_t n = kv.value.size() / 8;
      if (n != expected.size()) ++local_failures;
    });
    const auto words =
        ctx.comm.allreduce_u64(local_words, simmpi::Op::kSum);
    const auto bad = ctx.comm.allreduce_u64(
        static_cast<std::uint64_t>(local_failures), simmpi::Op::kSum);
    if (ctx.rank() == 0) {
      std::printf("indexed %llu terms across %llu documents, %llu "
                  "posting mismatches\n",
                  static_cast<unsigned long long>(words),
                  static_cast<unsigned long long>(docs),
                  static_cast<unsigned long long>(bad));
      failures = static_cast<int>(bad);
      if (words != reference.size()) failures += 1;
    }
  });
  return failures == 0 ? 0 : 1;
}
