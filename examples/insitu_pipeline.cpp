// In-situ analytics pipeline — the paper's third input-source category,
// expressed as a sched::Graph instead of a hand-rolled loop.
//
// A toy "simulation" produces particle data in memory every timestep;
// each timestep becomes a two-node chain in one job DAG:
//
//   hist<N>:  histogram particle energies into bins (in-situ producer,
//             combiner so the shuffle carries one KV per bin per rank);
//   bands<N>: map the per-bin counts into coarse bands and reduce to a
//             4-row summary, fed the histogram's output container
//             directly over a data edge (no PFS round-trip).
//
// The timestep chains are independent components, so the dataflow
// scheduler can run several of them concurrently over disjoint rank
// groups under a global memory budget — try concurrency=4 and compare
// the reported sim time with the sequential default. Particle energies
// are derived from a counter-based hash, so the summary is identical
// for every rank count and concurrency setting.
//
// Usage: ./insitu_pipeline [steps=4] [particles=100000]
//                          [concurrency=1] [budget=<bytes, 0=node mem>]
#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "mimir/mimir.hpp"
#include "mutil/config.hpp"
#include "mutil/hash.hpp"
#include "sched/scheduler.hpp"
#include "simmpi/runtime.hpp"

namespace {

constexpr int kBins = 64;
constexpr int kRanks = 8;

void sum_u64(std::string_view, std::string_view a, std::string_view b,
             std::string& out) {
  const std::uint64_t total = mimir::as_u64(a) + mimir::as_u64(b);
  out.assign(mimir::as_view(total));
}

/// Energy of global particle `i` at timestep `step`: exponential tail
/// from a counter-based hash (identical on every rank layout).
double particle_energy(int step, std::uint64_t i) {
  const std::uint64_t h =
      mutil::mix64(static_cast<std::uint64_t>(step) * 0x9e3779b97f4a7c15ull + i);
  const double u =
      static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);  // [0,1)
  return -std::log(1.0 - u);
}

/// Per-rank session state: the coarse-band totals of every timestep.
struct BandTotals {
  std::vector<std::array<std::uint64_t, 4>> by_step;
};

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  const auto cfg = mutil::Config::from_args(args);
  const int steps = static_cast<int>(cfg.get_int("steps", 4));
  const auto particles =
      static_cast<std::uint64_t>(cfg.get_int("particles", 100000));

  mimir::JobConfig hist_cfg;
  hist_cfg.hint = mimir::KVHint::fixed(8, 8);  // bin id -> count
  hist_cfg.kv_compression = true;              // combine before shuffle

  // --- the job DAG: one independent histogram->bands chain per step ----
  sched::Graph graph;
  for (int step = 0; step < steps; ++step) {
    sched::JobNode hist;
    hist.name = "hist" + std::to_string(step);
    hist.config = hist_cfg;
    hist.combiner = sum_u64;
    hist.partial = sum_u64;
    hist.producer = [step, particles](sched::NodeCtx& nctx,
                                      mimir::Emitter& out) {
      // Each rank of the node's group simulates its share of particles,
      // partitioned by global index so the data is layout-independent.
      const auto size = static_cast<std::uint64_t>(nctx.exec.size());
      const auto rank = static_cast<std::uint64_t>(nctx.exec.rank());
      for (std::uint64_t i = rank; i < particles; i += size) {
        const double energy = particle_energy(step, i);
        const auto bin = static_cast<std::uint64_t>(
            std::min<double>(kBins - 1, energy * 8.0));
        out.emit(mimir::as_view(bin), std::uint64_t{1});
      }
    };

    sched::JobNode bands;
    bands.name = "bands" + std::to_string(step);
    bands.config = hist_cfg;
    bands.combiner = sum_u64;
    bands.kv_map = [](sched::NodeCtx&, std::string_view bin,
                      std::string_view count, mimir::Emitter& out) {
      const std::uint64_t band = mimir::as_u64(bin) / 21;
      out.emit(mimir::as_view(band), count);
    };
    bands.partial = sum_u64;
    bands.consume = [step](sched::NodeCtx& nctx, mimir::KVContainer& out) {
      auto* totals = static_cast<BandTotals*>(nctx.state);
      out.scan([&](const mimir::KVView& kv) {
        totals->by_step[static_cast<std::size_t>(step)]
                       [mimir::as_u64(kv.key) & 3] = mimir::as_u64(kv.value);
      });
    };

    const int h = graph.add(hist);
    const int b = graph.add(bands);
    graph.add_edge(h, b);
  }

  sched::GraphOptions options = sched::GraphOptions::from(cfg);
  options.max_concurrency =
      static_cast<int>(cfg.get_int("concurrency", options.max_concurrency));
  options.memory_budget = cfg.get_size("budget", options.memory_budget);
  options.make_state = [steps](simmpi::Context&) {
    auto state = std::make_shared<BandTotals>();
    state->by_step.resize(static_cast<std::size_t>(steps));
    return state;
  };
  options.epilogue = [steps](sched::NodeCtx& nctx) {
    // Bands land on their key's hash owner within the step's rank
    // group; the world-level reduction folds the groups together.
    auto* totals = static_cast<BandTotals*>(nctx.state);
    for (int step = 0; step < steps; ++step) {
      std::uint64_t merged[4];
      for (int b = 0; b < 4; ++b) {
        merged[b] = nctx.exec.comm.allreduce_u64(
            totals->by_step[static_cast<std::size_t>(step)]
                           [static_cast<std::size_t>(b)],
            simmpi::Op::kSum);
      }
      if (nctx.exec.rank() == 0) {
        std::printf(
            "step %d: low=%llu mid=%llu high=%llu tail=%llu\n", step,
            static_cast<unsigned long long>(merged[0]),
            static_cast<unsigned long long>(merged[1]),
            static_cast<unsigned long long>(merged[2]),
            static_cast<unsigned long long>(merged[3]));
      }
    }
  };

  const auto machine = simtime::MachineProfile::test_profile();
  pfs::FileSystem fs(machine, kRanks);
  const sched::GraphOutcome outcome =
      sched::run_graph(kRanks, machine, fs, graph, options);
  std::printf(
      "%d jobs in %d wave(s), concurrency %d: sim time %.6fs, node peak "
      "%llu bytes\n",
      outcome.jobs(), outcome.waves(), options.max_concurrency,
      outcome.stats.sim_time,
      static_cast<unsigned long long>(outcome.stats.node_peak));
  return 0;
}
