// In-situ analytics pipeline — the paper's third input-source category.
//
// A toy "simulation" produces particle data in memory every timestep;
// Mimir consumes it directly through map_custom (no file system
// round-trip) and chains two MapReduce stages:
//
//   stage 1: histogram particle energies into bins (with a combiner so
//            the shuffle carries one KV per bin per rank);
//   stage 2: map the per-bin counts into coarse bands and reduce to a
//            3-row summary, demonstrating multistage jobs whose input is
//            the previous job's output (map_kvs).
//
// Usage: ./insitu_pipeline [steps=4] [particles=100000]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>

#include "mimir/mimir.hpp"
#include "mutil/config.hpp"
#include "mutil/random.hpp"
#include "simmpi/runtime.hpp"

namespace {

constexpr int kBins = 64;

void sum_u64(std::string_view, std::string_view a, std::string_view b,
             std::string& out) {
  const std::uint64_t total = mimir::as_u64(a) + mimir::as_u64(b);
  out.assign(mimir::as_view(total));
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  const auto cfg = mutil::Config::from_args(args);
  const int steps = static_cast<int>(cfg.get_int("steps", 4));
  const auto particles =
      static_cast<std::uint64_t>(cfg.get_int("particles", 100000));

  const auto machine = simtime::MachineProfile::test_profile();
  pfs::FileSystem fs(machine, 8);

  simmpi::run(8, machine, fs, [&](simmpi::Context& ctx) {
    mimir::JobConfig hist_cfg;
    hist_cfg.hint = mimir::KVHint::fixed(8, 8);  // bin id -> count
    hist_cfg.kv_compression = true;              // combine before shuffle

    for (int step = 0; step < steps; ++step) {
      // --- stage 1: in-situ histogram of this timestep ------------------
      mimir::Job histogram(ctx, hist_cfg);
      histogram.map_custom(
          [&](mimir::Emitter& out) {
            // Each rank "simulates" its share of particles.
            mutil::Xoshiro256 rng(
                static_cast<std::uint64_t>(step) * 1000 +
                static_cast<std::uint64_t>(ctx.rank()));
            const std::uint64_t mine =
                particles / static_cast<std::uint64_t>(ctx.size());
            for (std::uint64_t i = 0; i < mine; ++i) {
              const double energy = -std::log(1.0 - rng.uniform());
              const auto bin = static_cast<std::uint64_t>(
                  std::min<double>(kBins - 1, energy * 8.0));
              out.emit(mimir::as_view(bin), std::uint64_t{1});
            }
          },
          sum_u64);
      histogram.partial_reduce(sum_u64);

      // --- stage 2: coarse bands from stage 1's output -------------------
      mimir::Job bands(ctx, hist_cfg);
      bands.map_kvs(histogram.take_output(),
                    [](std::string_view bin, std::string_view count,
                       mimir::Emitter& out) {
                      const std::uint64_t band = mimir::as_u64(bin) / 21;
                      out.emit(mimir::as_view(band), count);
                    },
                    sum_u64);
      bands.partial_reduce(sum_u64);

      std::uint64_t local[4] = {0, 0, 0, 0};
      bands.output().scan([&](const mimir::KVView& kv) {
        local[mimir::as_u64(kv.key) & 3] = mimir::as_u64(kv.value);
      });
      std::uint64_t totals[4];
      for (int b = 0; b < 4; ++b) {
        totals[b] = ctx.comm.allreduce_u64(local[b], simmpi::Op::kSum);
      }
      if (ctx.rank() == 0) {
        std::printf(
            "step %d: low=%llu mid=%llu high=%llu tail=%llu\n", step,
            static_cast<unsigned long long>(totals[0]),
            static_cast<unsigned long long>(totals[1]),
            static_cast<unsigned long long>(totals[2]),
            static_cast<unsigned long long>(totals[3]));
      }
    }
  });
  return 0;
}
