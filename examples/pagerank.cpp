// PageRank CLI — iterative floating-point MapReduce over a Kronecker
// graph, with dangling-mass redistribution.
//
// Usage:
//   ./pagerank [key=value ...]
// Keys: machine, ranks, scale, edge_factor, iterations, damping,
//       framework=mimir|mrmpi, hint/cps, page, comm, seed.
#include <cstdio>
#include <string>

#include "apps/pagerank.hpp"
#include "mutil/config.hpp"
#include "mutil/sizes.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  const auto cfg = mutil::Config::from_args(args);

  auto machine =
      simtime::MachineProfile::by_name(cfg.get_string("machine", "comet"));
  machine.apply_overrides(cfg);
  const int ranks =
      static_cast<int>(cfg.get_int("ranks", machine.ranks_per_node));

  apps::pr::RunOptions opts;
  opts.scale = static_cast<int>(cfg.get_int("scale", 12));
  opts.edge_factor = static_cast<int>(cfg.get_int("edge_factor", 16));
  opts.iterations = static_cast<int>(cfg.get_int("iterations", 10));
  opts.damping = cfg.get_double("damping", 0.85);
  opts.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 3));
  opts.page_size = cfg.get_size("page", 64 << 10);
  opts.comm_buffer = cfg.get_size("comm", 64 << 10);
  opts.hint = cfg.get_bool("hint", false);
  opts.cps = cfg.get_bool("cps", false);
  const bool mrmpi = cfg.get_string("framework", "mimir") == "mrmpi";

  pfs::FileSystem fs(machine, ranks);
  apps::pr::Result result;
  const auto stats = simmpi::run(ranks, machine, fs,
                                 // mimir: shared-ok — only rank 0 writes the capture
                                 [&](simmpi::Context& ctx) {
                                   // Only rank 0 writes the shared capture.
                                   auto r =
                                       mrmpi ? apps::pr::run_mrmpi(ctx, opts)
                                             : apps::pr::run_mimir(ctx, opts);
                                   if (ctx.rank() == 0) result = r;
                                 });

  std::printf("PageRank (%s, %s)\n", mrmpi ? "MR-MPI" : "Mimir",
              machine.name.c_str());
  std::printf("  vertices          : 2^%d\n", opts.scale);
  std::printf("  iterations        : %d (damping %.2f)\n", opts.iterations,
              opts.damping);
  std::printf("  total rank mass   : %.9f (should be ~1)\n",
              result.total_rank);
  std::printf("  top vertex        : %llu (rank %.6g)\n",
              static_cast<unsigned long long>(result.max_vertex),
              result.max_rank);
  std::printf("  last L1 delta     : %.3g\n", result.last_delta);
  std::printf("  peak node memory  : %s\n",
              mutil::format_size(stats.node_peak).c_str());
  std::printf("  execution time    : %.3f simulated seconds\n",
              stats.sim_time);
  return 0;
}
