// Octree clustering CLI — iterative multi-stage MapReduce over 3-D
// points (the protein-ligand clustering workload of Estrada et al.).
//
// Usage:
//   ./octree_clustering [key=value ...]
//
// Keys: machine, ranks, points (2^N count), density, max_depth,
//       framework=mimir|mrmpi, hint/pr/cps, page, comm, seed.
#include <cstdio>
#include <string>

#include "apps/octree.hpp"
#include "mutil/config.hpp"
#include "mutil/sizes.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  const auto cfg = mutil::Config::from_args(args);

  auto machine =
      simtime::MachineProfile::by_name(cfg.get_string("machine", "comet"));
  machine.apply_overrides(cfg);
  const int ranks =
      static_cast<int>(cfg.get_int("ranks", machine.ranks_per_node));

  apps::oc::RunOptions opts;
  opts.num_points = static_cast<std::uint64_t>(cfg.get_int("points", 1 << 16));
  opts.density = cfg.get_double("density", 0.01);
  opts.max_depth = static_cast<int>(cfg.get_int("max_depth", 8));
  opts.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 7));
  opts.page_size = cfg.get_size("page", 64 << 10);
  opts.comm_buffer = cfg.get_size("comm", 64 << 10);
  opts.hint = cfg.get_bool("hint", false);
  opts.pr = cfg.get_bool("pr", false);
  opts.cps = cfg.get_bool("cps", false);
  const bool mrmpi = cfg.get_string("framework", "mimir") == "mrmpi";

  pfs::FileSystem fs(machine, ranks);
  apps::oc::Result result;
  const auto stats = simmpi::run(ranks, machine, fs,
                                 // mimir: shared-ok — only rank 0 writes the capture
                                 [&](simmpi::Context& ctx) {
                                   // Only rank 0 writes the shared capture.
                                   auto r = mrmpi
                                               ? apps::oc::run_mrmpi(ctx, opts)
                                               : apps::oc::run_mimir(ctx, opts);
                                   if (ctx.rank() == 0) result = r;
                                 });

  std::printf("Octree clustering (%s, %s)\n", mrmpi ? "MR-MPI" : "Mimir",
              machine.name.c_str());
  std::printf("  points            : %llu\n",
              static_cast<unsigned long long>(opts.num_points));
  std::printf("  density threshold : %.2f%%\n", opts.density * 100);
  std::printf("  levels refined    : %d\n", result.levels);
  std::printf("  dense octants     : %llu\n",
              static_cast<unsigned long long>(result.dense_octants));
  std::printf("  clustered points  : %llu\n",
              static_cast<unsigned long long>(result.clustered_points));
  std::printf("  checksum          : %016llx\n",
              static_cast<unsigned long long>(result.checksum));
  std::printf("  peak node memory  : %s\n",
              mutil::format_size(stats.node_peak).c_str());
  std::printf("  execution time    : %.3f simulated seconds\n",
              stats.sim_time);
  return 0;
}
