// K-means clustering CLI — Lloyd's algorithm as iterative MapReduce.
//
// Usage: ./kmeans_clustering [points=65536] [clusters=8] [iterations=10]
//        [framework=mimir|mrmpi] [pr=1] [cps=0] [ranks=...] [machine=...]
#include <cstdio>
#include <string>

#include "apps/kmeans.hpp"
#include "mutil/config.hpp"
#include "mutil/sizes.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  const auto cfg = mutil::Config::from_args(args);

  auto machine =
      simtime::MachineProfile::by_name(cfg.get_string("machine", "comet"));
  machine.apply_overrides(cfg);
  const int ranks =
      static_cast<int>(cfg.get_int("ranks", machine.ranks_per_node));

  apps::km::RunOptions opts;
  opts.num_points =
      static_cast<std::uint64_t>(cfg.get_int("points", 1 << 16));
  opts.clusters = static_cast<int>(cfg.get_int("clusters", 8));
  opts.iterations = static_cast<int>(cfg.get_int("iterations", 10));
  opts.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 29));
  opts.pr = cfg.get_bool("pr", true);
  opts.cps = cfg.get_bool("cps", false);
  const bool mrmpi = cfg.get_string("framework", "mimir") == "mrmpi";

  pfs::FileSystem fs(machine, ranks);
  apps::km::Result result;
  const auto stats =
      // mimir: shared-ok — only rank 0 writes the capture
      simmpi::run(ranks, machine, fs, [&](simmpi::Context& ctx) {
        // Only rank 0 writes the shared capture.
        auto r = mrmpi ? apps::km::run_mrmpi(ctx, opts)
                       : apps::km::run_mimir(ctx, opts);
        if (ctx.rank() == 0) result = r;
      });

  std::printf("K-means (%s, %s)\n", mrmpi ? "MR-MPI" : "Mimir",
              machine.name.c_str());
  std::printf("  points            : %llu in %d clusters\n",
              static_cast<unsigned long long>(opts.num_points),
              opts.clusters);
  std::printf("  inertia           : %.6f\n", result.inertia);
  std::printf("  last shift        : %.3g\n", result.last_shift);
  for (std::size_t c = 0; c < result.centroids.size(); ++c) {
    std::printf("  cluster %zu: (%.4f, %.4f, %.4f)  n=%llu\n", c,
                result.centroids[c].x, result.centroids[c].y,
                result.centroids[c].z,
                static_cast<unsigned long long>(result.counts[c]));
  }
  std::printf("  peak node memory  : %s\n",
              mutil::format_size(stats.node_peak).c_str());
  std::printf("  execution time    : %.3f simulated seconds\n",
              stats.sim_time);
  return 0;
}
