// Ablation: skew-aware partitioning (mimir.balance) on vs off. Both
// workloads are deliberately skewed — the Zipf wordcount concentrates a
// handful of hot words, the power-law pagerank a handful of hot
// vertices — so with plain hash routing one rank receives far more
// bytes than the mean (the "imbalance" column, max over mean of
// per-rank received bytes) and pays for it in straggler wait and peak
// memory. With balance on, heavy keys found by the sampled sketch are
// split across ranks by the exchanged plan and merged back afterwards;
// results stay identical (test-enforced in tests/balance).
//
// Usage: ./ablation_balance [key=value ...]
#include <cstdio>
#include <string>

#include "apps/pagerank.hpp"
#include "apps/wordcount.hpp"
#include "harness.hpp"
#include "workloads.hpp"

namespace {

std::string wait_cell(const bench::Outcome& outcome, const char* phase) {
  if (!outcome.ok() || outcome.profile == nullptr) return "-";
  const auto it = outcome.profile->phase_attr.find(phase);
  if (it == outcome.profile->phase_attr.end()) return "-";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4fs", it->second.wait_seconds);
  return buf;
}

std::string imbalance_cell(const bench::Outcome& outcome) {
  if (!outcome.ok() || outcome.profile == nullptr) return "-";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fx", outcome.profile->recv_imbalance);
  return buf;
}

std::string rank_peak_cell(const bench::Outcome& outcome) {
  if (!outcome.ok() || outcome.profile == nullptr) return "-";
  return mutil::format_size(outcome.profile->memory_peak_max);
}

const char* mode_name(bool balance) { return balance ? "balance" : "hash"; }

}  // namespace

int main(int argc, char** argv) {
  const auto cfg = bench::parse_cli(argc, argv);
  bench::Report::init("ablation_balance", cfg);
  if (bench::Report* report = bench::Report::active()) {
    report->set_flag("balance", true);
  }
  auto machine = simtime::MachineProfile::comet_sim();
  machine.ranks_per_node = 4;
  // I/O-light profile: at comet's scaled 20 KB/s per-client PFS share a
  // single 32K input read stalls a rank for seconds, and any change in
  // round pacing (such as balanced routing) de-synchronizes the ranks'
  // read stalls so every stall serializes behind the exchange
  // rendezvous. That measures read-barrier resonance, not partitioning;
  // a faster client link keeps the ablation about shuffle imbalance.
  machine.pfs_client_bandwidth = 1e6;
  machine.apply_overrides(cfg);
  const int ranks = machine.ranks_per_node;
  const std::uint64_t dataset = cfg.get_size("size", 512 << 10);
  const std::uint64_t comm_buffer = cfg.get_size("comm_buffer", 8 << 10);
  const double zipf = cfg.get_double("zipf", 1.6);
  const double graph_skew = cfg.get_double("graph_skew", 1.2);

  pfs::FileSystem fs(machine, ranks);
  apps::wc::GenOptions gen;
  gen.total_bytes = dataset;
  gen.num_files = ranks;
  gen.zipf_exponent = zipf;
  const auto files = apps::wc::generate_wikipedia(fs, "wc", gen);

  const std::vector<std::string> columns = {
      "size",           "hash wait",      "hash imbalance",
      "hash rank peak", "hash mem",       "hash time",
      "balance wait",   "balance imbalance", "balance rank peak",
      "balance mem",    "balance time"};
  const std::string caption =
      "Hash routing vs skew-aware partitioning on skewed inputs.\n"
      "Expected: identical results, lower receive imbalance (max over\n"
      "mean of per-rank received bytes), less straggler wait in the\n"
      "map/aggregate, and a lower worst-rank memory high-water with\n"
      "mimir.balance=1.";

  {
    bench::Table table("Ablation — skew-aware partitioning, WC (Zipf)",
                       caption, columns);
    const std::string x = mutil::format_size(dataset);
    bench::Outcome outcomes[2];
    for (const bool balance : {false, true}) {
      outcomes[balance ? 1 : 0] = bench::run_config(
          ranks, machine, fs,
          [&](simmpi::Context& ctx) {
            apps::wc::RunOptions opts;
            opts.files = files;
            opts.page_size = 64 << 10;
            opts.comm_buffer = comm_buffer;
            opts.pr = true;
            opts.balance = balance;
            (void)apps::wc::run_mimir(ctx, opts);
            return false;
          },
          {"WC (Zipf)", x, mode_name(balance)});
    }
    table.row({x, wait_cell(outcomes[0], "map"), imbalance_cell(outcomes[0]),
               rank_peak_cell(outcomes[0]), bench::Table::mem_cell(outcomes[0]),
               bench::Table::time_cell(outcomes[0]),
               wait_cell(outcomes[1], "map"), imbalance_cell(outcomes[1]),
               rank_peak_cell(outcomes[1]), bench::Table::mem_cell(outcomes[1]),
               bench::Table::time_cell(outcomes[1])});
  }

  {
    bench::Table table(
        "Ablation — skew-aware partitioning, PageRank (power law)", caption,
        columns);
    const int scale = 10;
    const std::uint64_t nvertices = 1ull << scale;
    const auto edges =
        bench::power_law_edges(nvertices, nvertices * 8, graph_skew, 7);
    const std::string x = "2^10";
    bench::Outcome outcomes[2];
    for (const bool balance : {false, true}) {
      outcomes[balance ? 1 : 0] = bench::run_config(
          ranks, machine, fs,
          [&](simmpi::Context& ctx) {
            apps::pr::RunOptions opts;
            opts.scale = scale;
            opts.edges = edges;
            opts.iterations = 3;
            opts.page_size = 64 << 10;
            opts.comm_buffer = comm_buffer;
            opts.balance = balance;
            (void)apps::pr::run_mimir(ctx, opts);
            return false;
          },
          {"PageRank (power law)", x, mode_name(balance)});
    }
    table.row({x, wait_cell(outcomes[0], "map"), imbalance_cell(outcomes[0]),
               rank_peak_cell(outcomes[0]), bench::Table::mem_cell(outcomes[0]),
               bench::Table::time_cell(outcomes[0]),
               wait_cell(outcomes[1], "map"), imbalance_cell(outcomes[1]),
               rank_peak_cell(outcomes[1]), bench::Table::mem_cell(outcomes[1]),
               bench::Table::time_cell(outcomes[1])});
  }
  return 0;
}
