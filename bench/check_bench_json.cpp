// Validates the machine-readable bench output against the printed
// tables it was captured with:
//
//   check_bench_json BENCH_<figure>.json [TRACE_<figure>.json]
//
// The BENCH document must parse, every point must carry a well-formed
// stats block whose traffic matrix total equals its shuffle.bytes_sent
// counter, and every runnable sweep point must round-trip: the memory
// and time cells recomputed from the point's numbers must equal the
// cells captured from the printed table. The TRACE document, when
// given, must parse as a Chrome trace-event object with consistent
// duration events. Exits non-zero with a message on the first failure.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "harness.hpp"
#include "mutil/error.hpp"
#include "stats/jsonlite.hpp"

namespace {

using stats::jsonlite::Value;

[[noreturn]] void fail(const std::string& message) {
  std::fprintf(stderr, "check_bench_json: %s\n", message.c_str());
  std::exit(1);
}

std::string slurp(const char* path) {
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) fail(std::string("cannot open ") + path);
  std::string body;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    body.append(buf, n);
  }
  std::fclose(f);
  return body;
}

bench::Outcome::Status parse_status(const std::string& name) {
  using Status = bench::Outcome::Status;
  if (name == "ok") return Status::kOk;
  if (name == "spill") return Status::kSpilled;
  if (name == "oom") return Status::kOom;
  if (name == "err") return Status::kError;
  fail("unknown point status '" + name + "'");
}

/// Find the cell of (table containing `app` in its title, row with
/// x-label `x`, column named `column`); nullptr when absent.
const std::string* table_cell(
    const std::vector<const Value*>& tables, const std::string& app,
    const std::string& x, const std::string& column,
    std::vector<std::string>* scratch) {
  for (const Value* table : tables) {
    if (table->at("title").str.find(app) == std::string::npos) continue;
    const Value& columns = table->at("columns");
    std::size_t col = columns.array.size();
    for (std::size_t c = 0; c < columns.array.size(); ++c) {
      if (columns.array[c].str == column) col = c;
    }
    if (col == columns.array.size()) continue;
    for (const Value& row : table->at("rows").array) {
      if (row.array.empty() || row.array[0].str != x) continue;
      if (col >= row.array.size()) continue;
      scratch->push_back(row.array[col].str);
      return &scratch->back();
    }
  }
  return nullptr;
}

/// Wait/compute attribution, memory breakdown, and critical-path
/// sections of one point's stats block (schema 2).
void check_profile(const std::string& where, const Value& point,
                   const Value& stats) {
  const std::size_t nranks = stats.at("traffic").at("matrix").array.size();
  const double sim_time = point.at("sim_time").number;

  // Per-phase attribution: per-rank arrays sized to the rank count;
  // every rank's compute + wait is bounded by the phase envelope, so
  // the cross-rank maxima are too.
  for (const auto& [name, phase] : stats.at("phases").object) {
    const Value* wait = phase.find("wait_seconds");
    if (wait == nullptr) continue;  // pre-attribution phase entry
    const double seconds = phase.at("seconds").number;
    const double eps = 1e-6 * std::max(1.0, seconds);
    const double compute = phase.at("compute_seconds").number;
    if (wait->number < 0.0 || wait->number > seconds + eps) {
      fail(where + ": phase " + name + " wait_seconds " +
           std::to_string(wait->number) + " outside [0, seconds]");
    }
    if (compute < 0.0 || compute > seconds + eps) {
      fail(where + ": phase " + name + " compute_seconds " +
           std::to_string(compute) + " outside [0, seconds]");
    }
    if (phase.at("imbalance").number <= 0.0) {
      fail(where + ": phase " + name + " non-positive imbalance");
    }
    const double straggler = phase.at("straggler").number;
    if (straggler < -1 || straggler >= static_cast<double>(nranks)) {
      fail(where + ": phase " + name + " straggler rank " +
           std::to_string(static_cast<int>(straggler)) + " out of range");
    }
    for (const char* key : {"per_rank_compute", "per_rank_wait"}) {
      if (phase.at(key).array.size() != nranks) {
        fail(where + ": phase " + name + " " + key + " has " +
             std::to_string(phase.at(key).array.size()) + " entries for " +
             std::to_string(nranks) + " ranks");
      }
    }
    // Exposed I/O stall is wall time inside the phase; hidden I/O is
    // cost covered by compute (a drained never-waited queue can close
    // out past the phase end, so it is only sign-checked here — the
    // run-level bound against the charged timer is below).
    const Value* io_wait = phase.find("io_wait_seconds");
    if (io_wait != nullptr &&
        (io_wait->number < 0.0 || io_wait->number > seconds + eps)) {
      fail(where + ": phase " + name + " io_wait_seconds " +
           std::to_string(io_wait->number) + " outside [0, seconds]");
    }
    const Value* io_hidden = phase.find("io_hidden_seconds");
    if (io_hidden != nullptr && io_hidden->number < 0.0) {
      fail(where + ": phase " + name + " negative io_hidden_seconds");
    }
  }

  // Whole-run wait: the total is the sum of the per-rank totals.
  const Value& wait = stats.at("wait");
  if (wait.at("per_rank").array.size() != nranks) {
    fail(where + ": wait.per_rank has " +
         std::to_string(wait.at("per_rank").array.size()) +
         " entries for " + std::to_string(nranks) + " ranks");
  }
  double wait_sum = 0.0;
  for (const Value& w : wait.at("per_rank").array) wait_sum += w.number;
  const double wait_total = wait.at("total_seconds").number;
  if (std::abs(wait_sum - wait_total) > 1e-6 * std::max(1.0, wait_total)) {
    fail(where + ": wait.per_rank sums to " + std::to_string(wait_sum) +
         " != total_seconds " + std::to_string(wait_total));
  }

  // I/O attribution: per-rank splits sum to the totals, and neither
  // side of the split exceeds the charged PFS time — hidden seconds
  // are pfs.io_seconds the pipeline covered with compute, never new
  // time invented on top of it.
  const Value& io = stats.at("io");
  const double io_wait_total = io.at("wait_seconds").number;
  const double io_hidden_total = io.at("hidden_seconds").number;
  for (const auto& [key, total] :
       {std::pair<const char*, double>{"per_rank_wait", io_wait_total},
        std::pair<const char*, double>{"per_rank_hidden",
                                       io_hidden_total}}) {
    const Value& per_rank = io.at(key);
    if (per_rank.array.size() != nranks) {
      fail(where + ": io." + key + " has " +
           std::to_string(per_rank.array.size()) + " entries for " +
           std::to_string(nranks) + " ranks");
    }
    double sum = 0.0;
    for (const Value& v : per_rank.array) {
      if (v.number < 0.0) fail(where + ": negative entry in io." + key);
      sum += v.number;
    }
    if (std::abs(sum - total) > 1e-6 * std::max(1.0, total)) {
      fail(where + ": io." + key + " sums to " + std::to_string(sum) +
           " != " + std::to_string(total));
    }
  }
  const Value* charged = stats.at("timers").find("pfs.io_seconds");
  const double io_charged = charged == nullptr ? 0.0 : charged->number;
  const double io_eps = 1e-6 * std::max(1.0, io_charged);
  if (io_hidden_total > io_charged + io_eps) {
    fail(where + ": io.hidden_seconds " + std::to_string(io_hidden_total) +
         " exceeds charged pfs.io_seconds " + std::to_string(io_charged));
  }
  if (io_wait_total > io_charged + io_eps) {
    fail(where + ": io.wait_seconds " + std::to_string(io_wait_total) +
         " exceeds charged pfs.io_seconds " + std::to_string(io_charged));
  }

  // Tagged memory must reconcile with the untagged accounting: the
  // component currents partition current_total, and no component peak
  // can exceed the cross-rank peak.
  const Value& memory = stats.at("memory");
  const std::uint64_t current_total = memory.at("current_total").as_u64();
  const std::uint64_t peak_max = memory.at("peak_max").as_u64();
  std::uint64_t component_current = 0;
  for (const auto& [tag, component] : memory.at("components").object) {
    component_current += component.at("current").as_u64();
    if (component.at("peak").as_u64() > peak_max) {
      fail(where + ": memory component " + tag + " peak " +
           std::to_string(component.at("peak").as_u64()) +
           " exceeds peak_max " + std::to_string(peak_max));
    }
  }
  if (component_current != current_total) {
    fail(where + ": memory components sum to " +
         std::to_string(component_current) + " != current_total " +
         std::to_string(current_total));
  }

  // Scheduler runs that completed must carry their critical path:
  // non-empty, chronologically ordered, ending within the run.
  const bool sched = stats.at("counters").find("sched.jobs") != nullptr;
  const bool runnable = point.at("status").str == "ok" ||
                        point.at("status").str == "spill";
  if (sched && runnable) {
    const Value* critical = stats.find("critical_path");
    if (critical == nullptr || critical->at("steps").array.empty()) {
      fail(where + ": sched point without a critical_path");
    }
    const double eps = 1e-6 * std::max(1.0, sim_time);
    double previous_end = 0.0;
    for (const Value& step : critical->at("steps").array) {
      const double end = step.at("end").number;
      if (end + eps < previous_end) {
        fail(where + ": critical_path step " + step.at("name").str +
             " ends before its predecessor");
      }
      if (step.at("seconds").number < -eps) {
        fail(where + ": critical_path step " + step.at("name").str +
             " has negative duration");
      }
      previous_end = end;
    }
    if (critical->at("total_seconds").number > sim_time + eps) {
      fail(where + ": critical_path total " +
           std::to_string(critical->at("total_seconds").number) +
           " exceeds sim_time " + std::to_string(sim_time));
    }
  }
}

void check_bench(const Value& doc) {
  if (!doc.is_object()) fail("BENCH document is not an object");
  if (doc.at("figure").str.empty()) fail("empty figure id");
  if (doc.at("schema").as_u64() != 2) {
    fail("schema " + std::to_string(doc.at("schema").as_u64()) +
         " (this checker validates schema 2)");
  }
  const Value& points = doc.at("points");
  if (!points.is_array() || points.array.empty()) {
    fail("no points recorded");
  }

  std::vector<const Value*> tables;
  for (const Value& t : doc.at("tables").array) tables.push_back(&t);

  std::vector<std::string> scratch;
  scratch.reserve(2 * points.array.size());
  std::size_t round_tripped = 0;
  for (const Value& point : points.array) {
    const std::string where =
        point.at("app").str + " / " + point.at("x").str + " / " +
        point.at("series").str;

    bench::Outcome outcome;
    outcome.status = parse_status(point.at("status").str);
    outcome.time = point.at("sim_time").number;
    outcome.peak = point.at("node_peak").as_u64();
    outcome.shuffled = point.at("shuffle_bytes").as_u64();
    if (outcome.ok() && outcome.time <= 0.0) {
      fail(where + ": ok point with non-positive sim_time");
    }

    // The stats block must be internally consistent: the traffic matrix
    // accounts for exactly the bytes the shuffle counters saw.
    const Value& stats = point.at("stats");
    const Value& traffic = stats.at("traffic");
    std::uint64_t matrix_total = 0;
    for (const Value& row : traffic.at("matrix").array) {
      for (const Value& cell : row.array) matrix_total += cell.as_u64();
    }
    if (matrix_total != traffic.at("total_bytes").as_u64()) {
      fail(where + ": traffic matrix total " +
           std::to_string(matrix_total) + " != reported total_bytes");
    }
    const Value* sent = stats.at("counters").find("shuffle.bytes_sent");
    const std::uint64_t counter_sent = sent ? sent->as_u64() : 0;
    if (matrix_total != counter_sent) {
      fail(where + ": traffic matrix total " +
           std::to_string(matrix_total) + " != shuffle.bytes_sent " +
           std::to_string(counter_sent));
    }

    // Scheduler runs must carry a consistent admission story: every
    // job was either admitted to wave 0 or queued to a later one, and
    // at least one wave executed.
    const Value* sched_jobs = stats.at("counters").find("sched.jobs");
    if (sched_jobs != nullptr) {
      const Value* admitted = stats.at("counters").find("sched.admitted");
      const Value* queued = stats.at("counters").find("sched.queued");
      const Value* waves = stats.at("counters").find("sched.waves");
      const std::uint64_t adm = admitted ? admitted->as_u64() : 0;
      const std::uint64_t que = queued ? queued->as_u64() : 0;
      if (adm + que != sched_jobs->as_u64()) {
        fail(where + ": sched.admitted " + std::to_string(adm) +
             " + sched.queued " + std::to_string(que) +
             " != sched.jobs " + std::to_string(sched_jobs->as_u64()));
      }
      if (waves == nullptr || waves->as_u64() == 0) {
        fail(where + ": sched point without a positive sched.waves");
      }
    }

    check_profile(where, point, stats);

    // Sweep points (app/x/series all set) must match the printed table.
    if (point.at("x").str.empty() || point.at("series").str.empty()) {
      continue;
    }
    const std::string* mem =
        table_cell(tables, point.at("app").str, point.at("x").str,
                   point.at("series").str + " mem", &scratch);
    const std::string* time =
        table_cell(tables, point.at("app").str, point.at("x").str,
                   point.at("series").str + " time", &scratch);
    if (mem == nullptr || time == nullptr) continue;
    if (*mem != bench::Table::mem_cell(outcome)) {
      fail(where + ": table mem cell '" + *mem +
           "' != recomputed '" + bench::Table::mem_cell(outcome) + "'");
    }
    if (*time != bench::Table::time_cell(outcome)) {
      fail(where + ": table time cell '" + *time +
           "' != recomputed '" + bench::Table::time_cell(outcome) + "'");
    }
    ++round_tripped;
  }
  if (round_tripped == 0) {
    fail("no sweep point could be matched against a captured table");
  }
  std::printf("BENCH ok: %zu points, %zu table round-trips\n",
              points.array.size(), round_tripped);
}

void check_trace(const Value& doc) {
  if (!doc.is_object()) fail("TRACE document is not an object");
  const Value& events = doc.at("traceEvents");
  if (!events.is_array() || events.array.empty()) {
    fail("TRACE has no events");
  }
  std::size_t durations = 0;
  for (const Value& event : events.array) {
    const std::string& ph = event.at("ph").str;
    if (ph == "X") {
      if (event.at("ts").number < 0 || event.at("dur").number < 0) {
        fail("duration event with negative ts/dur");
      }
      ++durations;
    } else if (ph == "C") {
      if (event.at("ts").number < 0) {
        fail("counter event with negative ts");
      }
    } else if (ph != "i" && ph != "M") {
      fail("unexpected event phase '" + ph + "'");
    }
  }
  if (durations == 0) fail("TRACE has no duration events");
  std::printf("TRACE ok: %zu events, %zu durations\n",
              events.array.size(), durations);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: check_bench_json BENCH.json [TRACE.json]\n");
    return 2;
  }
  try {
    check_bench(stats::jsonlite::parse(slurp(argv[1])));
    if (argc > 2) check_trace(stats::jsonlite::parse(slurp(argv[2])));
  } catch (const mutil::Error& e) {
    fail(e.what());
  }
  return 0;
}
