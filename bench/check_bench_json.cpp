// Validates the machine-readable bench output against the printed
// tables it was captured with:
//
//   check_bench_json BENCH_<figure>.json [TRACE_<figure>.json]
//
// The BENCH document must parse, every point must carry a well-formed
// stats block whose traffic matrix total equals its shuffle.bytes_sent
// counter, and every runnable sweep point must round-trip: the memory
// and time cells recomputed from the point's numbers must equal the
// cells captured from the printed table. The TRACE document, when
// given, must parse as a Chrome trace-event object with consistent
// duration events. Exits non-zero with a message on the first failure.
#include <cstdio>
#include <string>
#include <vector>

#include "harness.hpp"
#include "mutil/error.hpp"
#include "stats/jsonlite.hpp"

namespace {

using stats::jsonlite::Value;

[[noreturn]] void fail(const std::string& message) {
  std::fprintf(stderr, "check_bench_json: %s\n", message.c_str());
  std::exit(1);
}

std::string slurp(const char* path) {
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) fail(std::string("cannot open ") + path);
  std::string body;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    body.append(buf, n);
  }
  std::fclose(f);
  return body;
}

bench::Outcome::Status parse_status(const std::string& name) {
  using Status = bench::Outcome::Status;
  if (name == "ok") return Status::kOk;
  if (name == "spill") return Status::kSpilled;
  if (name == "oom") return Status::kOom;
  if (name == "err") return Status::kError;
  fail("unknown point status '" + name + "'");
}

/// Find the cell of (table containing `app` in its title, row with
/// x-label `x`, column named `column`); nullptr when absent.
const std::string* table_cell(
    const std::vector<const Value*>& tables, const std::string& app,
    const std::string& x, const std::string& column,
    std::vector<std::string>* scratch) {
  for (const Value* table : tables) {
    if (table->at("title").str.find(app) == std::string::npos) continue;
    const Value& columns = table->at("columns");
    std::size_t col = columns.array.size();
    for (std::size_t c = 0; c < columns.array.size(); ++c) {
      if (columns.array[c].str == column) col = c;
    }
    if (col == columns.array.size()) continue;
    for (const Value& row : table->at("rows").array) {
      if (row.array.empty() || row.array[0].str != x) continue;
      if (col >= row.array.size()) continue;
      scratch->push_back(row.array[col].str);
      return &scratch->back();
    }
  }
  return nullptr;
}

void check_bench(const Value& doc) {
  if (!doc.is_object()) fail("BENCH document is not an object");
  if (doc.at("figure").str.empty()) fail("empty figure id");
  const Value& points = doc.at("points");
  if (!points.is_array() || points.array.empty()) {
    fail("no points recorded");
  }

  std::vector<const Value*> tables;
  for (const Value& t : doc.at("tables").array) tables.push_back(&t);

  std::vector<std::string> scratch;
  scratch.reserve(2 * points.array.size());
  std::size_t round_tripped = 0;
  for (const Value& point : points.array) {
    const std::string where =
        point.at("app").str + " / " + point.at("x").str + " / " +
        point.at("series").str;

    bench::Outcome outcome;
    outcome.status = parse_status(point.at("status").str);
    outcome.time = point.at("sim_time").number;
    outcome.peak = point.at("node_peak").as_u64();
    outcome.shuffled = point.at("shuffle_bytes").as_u64();
    if (outcome.ok() && outcome.time <= 0.0) {
      fail(where + ": ok point with non-positive sim_time");
    }

    // The stats block must be internally consistent: the traffic matrix
    // accounts for exactly the bytes the shuffle counters saw.
    const Value& stats = point.at("stats");
    const Value& traffic = stats.at("traffic");
    std::uint64_t matrix_total = 0;
    for (const Value& row : traffic.at("matrix").array) {
      for (const Value& cell : row.array) matrix_total += cell.as_u64();
    }
    if (matrix_total != traffic.at("total_bytes").as_u64()) {
      fail(where + ": traffic matrix total " +
           std::to_string(matrix_total) + " != reported total_bytes");
    }
    const Value* sent = stats.at("counters").find("shuffle.bytes_sent");
    const std::uint64_t counter_sent = sent ? sent->as_u64() : 0;
    if (matrix_total != counter_sent) {
      fail(where + ": traffic matrix total " +
           std::to_string(matrix_total) + " != shuffle.bytes_sent " +
           std::to_string(counter_sent));
    }

    // Scheduler runs must carry a consistent admission story: every
    // job was either admitted to wave 0 or queued to a later one, and
    // at least one wave executed.
    const Value* sched_jobs = stats.at("counters").find("sched.jobs");
    if (sched_jobs != nullptr) {
      const Value* admitted = stats.at("counters").find("sched.admitted");
      const Value* queued = stats.at("counters").find("sched.queued");
      const Value* waves = stats.at("counters").find("sched.waves");
      const std::uint64_t adm = admitted ? admitted->as_u64() : 0;
      const std::uint64_t que = queued ? queued->as_u64() : 0;
      if (adm + que != sched_jobs->as_u64()) {
        fail(where + ": sched.admitted " + std::to_string(adm) +
             " + sched.queued " + std::to_string(que) +
             " != sched.jobs " + std::to_string(sched_jobs->as_u64()));
      }
      if (waves == nullptr || waves->as_u64() == 0) {
        fail(where + ": sched point without a positive sched.waves");
      }
    }

    // Sweep points (app/x/series all set) must match the printed table.
    if (point.at("x").str.empty() || point.at("series").str.empty()) {
      continue;
    }
    const std::string* mem =
        table_cell(tables, point.at("app").str, point.at("x").str,
                   point.at("series").str + " mem", &scratch);
    const std::string* time =
        table_cell(tables, point.at("app").str, point.at("x").str,
                   point.at("series").str + " time", &scratch);
    if (mem == nullptr || time == nullptr) continue;
    if (*mem != bench::Table::mem_cell(outcome)) {
      fail(where + ": table mem cell '" + *mem +
           "' != recomputed '" + bench::Table::mem_cell(outcome) + "'");
    }
    if (*time != bench::Table::time_cell(outcome)) {
      fail(where + ": table time cell '" + *time +
           "' != recomputed '" + bench::Table::time_cell(outcome) + "'");
    }
    ++round_tripped;
  }
  if (round_tripped == 0) {
    fail("no sweep point could be matched against a captured table");
  }
  std::printf("BENCH ok: %zu points, %zu table round-trips\n",
              points.array.size(), round_tripped);
}

void check_trace(const Value& doc) {
  if (!doc.is_object()) fail("TRACE document is not an object");
  const Value& events = doc.at("traceEvents");
  if (!events.is_array() || events.array.empty()) {
    fail("TRACE has no events");
  }
  std::size_t durations = 0;
  for (const Value& event : events.array) {
    const std::string& ph = event.at("ph").str;
    if (ph == "X") {
      if (event.at("ts").number < 0 || event.at("dur").number < 0) {
        fail("duration event with negative ts/dur");
      }
      ++durations;
    } else if (ph != "i" && ph != "M") {
      fail("unexpected event phase '" + ph + "'");
    }
  }
  if (durations == 0) fail("TRACE has no duration events");
  std::printf("TRACE ok: %zu events, %zu durations\n",
              events.array.size(), durations);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: check_bench_json BENCH.json [TRACE.json]\n");
    return 2;
  }
  try {
    check_bench(stats::jsonlite::parse(slurp(argv[1])));
    if (argc > 2) check_trace(stats::jsonlite::parse(slurp(argv[2])));
  } catch (const mutil::Error& e) {
    fail(e.what());
  }
  return 0;
}
