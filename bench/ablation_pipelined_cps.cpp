// Ablation (design decision 5, DESIGN.md): pipelined KV compression.
//
// The paper (§III-C2) keeps the compression bucket until the whole
// input is combined — maximal compression, but bucket memory grows with
// the number of unique keys and the aggregate is fully serialized
// behind the map. Bounding the bucket (cps_max_bucket) trades a little
// compression for bounded memory and overlapped communication. The
// sweep shows the trade-off on a skewed WordCount.
//
// Usage: ./ablation_pipelined_cps [key=value ...]
#include <atomic>

#include "apps/wordcount.hpp"
#include "harness.hpp"
#include "mimir/job.hpp"

int main(int argc, char** argv) {
  const auto cfg = bench::parse_cli(argc, argv);
  bench::Report::init("ablation_pipelined_cps", cfg);
  auto machine = simtime::MachineProfile::comet_sim();
  machine.ranks_per_node = 4;
  machine.apply_overrides(cfg);
  const int ranks = machine.ranks_per_node;

  pfs::FileSystem fs(machine, ranks);
  apps::wc::GenOptions gen;
  gen.total_bytes = cfg.get_size("size", 1 << 20);
  gen.num_files = ranks;
  const auto files = apps::wc::generate_wikipedia(fs, "wc", gen);

  bench::Table table(
      "Ablation — pipelined KV compression",
      "WordCount (Wikipedia) with the cps bucket flushed at a byte bound\n"
      "(0 = paper behaviour, flush only after the whole input).\n"
      "Expected: smaller bounds cap map-phase memory at the cost of some\n"
      "combining (more shuffled KVs).",
      {"bucket bound", "combined KVs", "shuffled KVs", "peak mem", "time"});

  for (const std::uint64_t bound :
       {std::uint64_t{0}, std::uint64_t{256} << 10, std::uint64_t{64} << 10,
        std::uint64_t{16} << 10, std::uint64_t{4} << 10}) {
    std::atomic<std::uint64_t> combined{0}, shuffled{0};
    const auto outcome = bench::run_config(
        ranks, machine, fs, [&](simmpi::Context& ctx) {
          mimir::JobConfig jc;
          jc.hint = mimir::KVHint::string_key_u64_value();
          jc.kv_compression = true;
          jc.cps_max_bucket = bound;
          mimir::Job job(ctx, jc);
          job.map_text_files(files, apps::wc::map_words,
                             apps::wc::combine_counts);
          job.partial_reduce(apps::wc::combine_counts);
          combined.fetch_add(job.metrics().combined_kvs);
          shuffled.fetch_add(job.metrics().map_emitted_kvs);
          return false;
        });
    table.row({bound == 0 ? "inf (paper)" : mutil::format_size(bound),
               std::to_string(combined.load()),
               std::to_string(shuffled.load()),
               bench::Table::mem_cell(outcome),
               bench::Table::time_cell(outcome)});
  }
  return 0;
}
