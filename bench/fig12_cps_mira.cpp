// Figure 12: effect of KV compression on one Mira node. Same series as
// Figure 11 with Mira's page limits (WC: 128M pages; OC/BFS: 64M pages,
// the paper's maxima that still fit in 16 GB).
//
// Expected shape: Mimir (cps) processes up to 16x larger datasets than
// MR-MPI (paper §IV-C).
//
// Usage: ./fig12_cps_mira [full=1] [key=value ...]
#include "fig_baseline.hpp"

int main(int argc, char** argv) {
  const auto cfg = bench::parse_cli(argc, argv);
  bench::Report::init("fig12", cfg);
  auto machine = simtime::MachineProfile::mira_sim();
  machine.apply_overrides(cfg);
  const bool quick = bench::quick_mode(cfg);

  const auto wc_configs = std::vector<bench::FrameworkConfig>{
      bench::FrameworkConfig::mimir("Mimir"),
      bench::FrameworkConfig::mimir("Mimir(cps)", false, false, true),
      bench::FrameworkConfig::mrmpi("MR-MPI", 128 << 10),
      bench::FrameworkConfig::mrmpi("MR-MPI(cps)", 128 << 10, true),
  };
  const auto small_page_configs = std::vector<bench::FrameworkConfig>{
      bench::FrameworkConfig::mimir("Mimir"),
      bench::FrameworkConfig::mimir("Mimir(cps)", false, false, true),
      bench::FrameworkConfig::mrmpi("MR-MPI", 64 << 10),
      bench::FrameworkConfig::mrmpi("MR-MPI(cps)", 64 << 10, true),
  };

  // Paper: WC 256M..8G -> 256K..8M, OC 2^24..2^29 -> 2^14..2^19,
  // BFS 2^18..2^23 -> 2^8..2^13.
  bench::run_figure(
      "Figure 12",
      "Performance of KV compression on one mira_sim node (WordCount).",
      machine,
      {{bench::App::kWcUniform, bench::ladder(256 << 10, quick ? 4 : 6)},
       {bench::App::kWcWikipedia, bench::ladder(256 << 10, quick ? 4 : 6)}},
      wc_configs);
  bench::run_figure(
      "Figure 12",
      "Performance of KV compression on one mira_sim node (OC, BFS).",
      machine,
      {{bench::App::kOc, bench::ladder(1 << 14, quick ? 4 : 6)},
       {bench::App::kBfs, bench::scales(8, quick ? 4 : 6)}},
      small_page_configs);
  return 0;
}
