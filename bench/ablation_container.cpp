// Ablation (design decision 2, DESIGN.md): paged containers with
// incremental free vs MR-MPI's statically allocated per-phase pages.
//
// Both frameworks shuffle the identical WordCount workload; the table
// shows where the memory goes. MR-MPI's aggregate must hold 7 fixed
// pages (send + 2x recv + 2x temp + input + output) regardless of the
// data; Mimir holds 2 communication buffers plus exactly the live KV
// pages.
//
// Usage: ./ablation_container [key=value ...]
#include "apps/wordcount.hpp"
#include "harness.hpp"

int main(int argc, char** argv) {
  const auto cfg = bench::parse_cli(argc, argv);
  bench::Report::init("ablation_container", cfg);
  auto machine = simtime::MachineProfile::comet_sim();
  machine.ranks_per_node = 4;  // a small node makes the census readable
  machine.apply_overrides(cfg);
  const int ranks = machine.ranks_per_node;

  const std::uint64_t dataset = cfg.get_size("size", 256 << 10);
  bench::Table table(
      "Ablation — buffer census",
      "Aggregate-phase memory for the same WordCount shuffle. MR-MPI's\n"
      "peak is pages*page_size per rank regardless of data volume;\n"
      "Mimir's tracks live data plus two comm buffers.",
      {"page size", "Mimir peak", "MR-MPI peak", "MR-MPI/Mimir"});

  for (const std::uint64_t page : {16u << 10, 64u << 10, 256u << 10}) {
    pfs::FileSystem fs(machine, ranks);
    apps::wc::GenOptions gen;
    gen.total_bytes = dataset;
    gen.num_files = ranks;
    const auto files = apps::wc::generate_uniform(fs, "wc", gen);
    apps::wc::RunOptions opts;
    opts.files = files;
    opts.page_size = page;
    opts.comm_buffer = page;

    const auto mimir = bench::run_config(
        ranks, machine, fs,
        [&](simmpi::Context& ctx) {
          return apps::wc::run_mimir(ctx, opts).spilled;
        });
    const auto mrmpi = bench::run_config(
        ranks, machine, fs,
        [&](simmpi::Context& ctx) {
          return apps::wc::run_mrmpi(ctx, opts).spilled;
        });
    char ratio[32];
    std::snprintf(ratio, sizeof(ratio), "%.2fx",
                  static_cast<double>(mrmpi.peak) /
                      static_cast<double>(mimir.peak));
    table.row({mutil::format_size(page), bench::Table::mem_cell(mimir),
               bench::Table::mem_cell(mrmpi), ratio});
  }
  return 0;
}
