// Figure 10: weak scalability of WordCount (Uniform and Wikipedia) on
// Comet and Mira — Mimir vs MR-MPI (64M) vs MR-MPI (512M on Comet /
// 128M on Mira), 512 MB/node (Comet) and 256 MB/node (Mira).
//
// Expected shapes (paper §IV-B):
//   * Mimir stays flat to 64 nodes on both machines;
//   * MR-MPI (64M) reaches ~32 nodes on uniform data and fails
//     immediately on the skewed Wikipedia data;
//   * bigger MR-MPI pages only push the Wikipedia failure to ~16 nodes.
//
// Thread-count note: the paper runs 24 (Comet) / 16 (Mira) ranks per
// node; to keep the simulated-node thread count tractable we place 2
// ranks per node and shrink the per-node dataset and memory by the same
// factor, preserving every per-rank ratio.
//
// Usage: ./fig10_weak_scaling [full=1] [key=value ...]
#include "harness.hpp"
#include "workloads.hpp"

namespace {

void weak_scaling(const char* machine_name, std::uint64_t per_node_bytes,
                  std::uint64_t big_page, const mutil::Config& cfg) {
  auto machine = simtime::MachineProfile::by_name(machine_name);
  const int paper_rpn = machine.ranks_per_node;
  constexpr int kRpn = 2;
  const auto factor = static_cast<std::uint64_t>(paper_rpn / kRpn);
  machine.ranks_per_node = kRpn;
  machine.node_memory /= factor;
  machine.apply_overrides(cfg);
  const std::uint64_t node_bytes = per_node_bytes / factor;

  std::vector<int> node_counts = {2, 4, 8};
  if (!bench::quick_mode(cfg)) {
    node_counts.push_back(16);
    node_counts.push_back(32);
    node_counts.push_back(64);
  }

  const std::vector<bench::FrameworkConfig> configs = {
      bench::FrameworkConfig::mimir("Mimir"),
      bench::FrameworkConfig::mrmpi("MR-MPI(64M)", 64 << 10),
      bench::FrameworkConfig::mrmpi(
          big_page == (512u << 10) ? "MR-MPI(512M)" : "MR-MPI(128M)",
          big_page),
  };

  for (const auto app : {bench::App::kWcUniform, bench::App::kWcWikipedia}) {
    std::vector<std::string> columns{"nodes"};
    for (const auto& fc : configs) columns.push_back(fc.label + " time");
    bench::Table table(
        std::string("Figure 10 — ") + bench::app_name(app) + ", " +
            machine.name,
        "Weak scaling, " + bench::paper_size(per_node_bytes) +
            "/node (paper scale). Flat time = perfect weak scaling.",
        columns);
    for (const int nodes : node_counts) {
      pfs::FileSystem fs(machine, nodes * kRpn);
      std::vector<std::string> cells{std::to_string(nodes)};
      for (const auto& fc : configs) {
        const auto outcome = bench::run_point(
            app, node_bytes * static_cast<std::uint64_t>(nodes), fc,
            nodes * kRpn, machine, fs);
        cells.push_back(bench::Table::time_cell(outcome));
      }
      table.row(cells);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto cfg = bench::parse_cli(argc, argv);
  bench::Report::init("fig10", cfg);
  weak_scaling("comet", 512 << 10, 512 << 10, cfg);
  weak_scaling("mira", 256 << 10, 128 << 10, cfg);
  return 0;
}
