#include "harness.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>

#include "check/checker.hpp"
#include "check/race.hpp"
#include "mutil/error.hpp"
#include "mutil/logging.hpp"
#include "stats/jsonlite.hpp"

namespace bench {

namespace {

std::unique_ptr<Report> g_report;  // written (and freed) at process exit

std::string json_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

}  // namespace

const char* Outcome::status_name() const {
  switch (status) {
    case Status::kOk: return "ok";
    case Status::kSpilled: return "spill";
    case Status::kOom: return "oom";
    case Status::kError: return "err";
  }
  return "?";
}

std::string RunLabel::text() const {
  std::string out;
  for (const std::string* part : {&app, &x, &series}) {
    if (part->empty()) continue;
    if (!out.empty()) out += " / ";
    out += *part;
  }
  return out;
}

Outcome run_config(int nranks, const simtime::MachineProfile& machine,
                   pfs::FileSystem& fs, const BenchFn& fn,
                   const RunLabel& label) {
  Outcome outcome;
  Report* report = Report::active();
  std::unique_ptr<stats::Collector> collector;
  if (report != nullptr) collector = std::make_unique<stats::Collector>();
  std::atomic<bool> spilled{false};
  try {
    const auto stats = simmpi::run(
        nranks, machine, fs,
        [&](simmpi::Context& ctx) {
          if (fn(ctx)) spilled.store(true, std::memory_order_relaxed);
        },
        collector.get());
    outcome.time = stats.sim_time;
    outcome.peak = stats.node_peak;
    outcome.shuffled = stats.shuffle_bytes;
    outcome.status =
        spilled.load() ? Outcome::Status::kSpilled : Outcome::Status::kOk;
  } catch (const mutil::OutOfMemoryError& e) {
    outcome.status = Outcome::Status::kOom;
    outcome.detail = e.what();
  } catch (const mutil::Error& e) {
    outcome.status = Outcome::Status::kError;
    outcome.detail = e.what();
  }
  if (report != nullptr) {
    outcome.profile =
        std::make_shared<const stats::Summary>(collector->summary());
    report->add_run(label, outcome, *collector);
  }
  return outcome;
}

Outcome run_repeated(int nranks, const simtime::MachineProfile& machine,
                     pfs::FileSystem& fs, int reps, const RepeatFn& fn,
                     const RunLabel& label) {
  Outcome outcome;
  Report* report = Report::active();
  std::unique_ptr<stats::Collector> collector;
  if (report != nullptr) collector = std::make_unique<stats::Collector>();
  std::atomic<bool> spilled{false};
  // Simulated start time of the measured (last) repetition; every rank
  // reaches it through the same barrier, so rank 0's value is the
  // job-wide one.
  std::atomic<double> measured_start{0.0};
  try {
    const auto stats = simmpi::run(
        nranks, machine, fs,
        [&](simmpi::Context& ctx) {
          for (int rep = 0; rep < reps; ++rep) {
            if (rep == reps - 1 && reps > 1) {
              ctx.comm.barrier();
              ctx.tracker.reset_peak();
              if (ctx.tracker.node() != nullptr &&
                  ctx.rank() % ctx.machine.ranks_per_node == 0) {
                ctx.tracker.node()->reset_peak();
              }
              ctx.comm.barrier();
              if (ctx.rank() == 0) {
                measured_start.store(ctx.clock().now(),
                                     std::memory_order_relaxed);
              }
            }
            if (fn(ctx, rep)) spilled.store(true, std::memory_order_relaxed);
          }
        },
        collector.get());
    outcome.time = stats.sim_time - measured_start.load();
    outcome.peak = stats.node_peak;
    outcome.shuffled = stats.shuffle_bytes;
    outcome.status =
        spilled.load() ? Outcome::Status::kSpilled : Outcome::Status::kOk;
  } catch (const mutil::OutOfMemoryError& e) {
    outcome.status = Outcome::Status::kOom;
    outcome.detail = e.what();
  } catch (const mutil::Error& e) {
    outcome.status = Outcome::Status::kError;
    outcome.detail = e.what();
  }
  if (report != nullptr) {
    outcome.profile =
        std::make_shared<const stats::Summary>(collector->summary());
    report->add_run(label, outcome, *collector);
  }
  return outcome;
}

Outcome run_driver(const DriverFn& fn, const RunLabel& label) {
  Outcome outcome;
  Report* report = Report::active();
  std::unique_ptr<stats::Collector> collector;
  if (report != nullptr) collector = std::make_unique<stats::Collector>();
  try {
    const auto stats = fn(collector.get());
    outcome.time = stats.sim_time;
    outcome.peak = stats.node_peak;
    outcome.shuffled = stats.shuffle_bytes;
    outcome.status = Outcome::Status::kOk;
  } catch (const mutil::OutOfMemoryError& e) {
    outcome.status = Outcome::Status::kOom;
    outcome.detail = e.what();
  } catch (const mutil::Error& e) {
    outcome.status = Outcome::Status::kError;
    outcome.detail = e.what();
  }
  if (report != nullptr) {
    outcome.profile =
        std::make_shared<const stats::Summary>(collector->summary());
    report->add_run(label, outcome, *collector);
  }
  return outcome;
}

void Report::init(const std::string& figure, const mutil::Config& cfg) {
  const bool stats = cfg.get_bool("stats", false);
  const bool trace = cfg.get_bool("trace", false);
  if (!stats && !trace) return;
  g_report.reset(new Report(figure, cfg));
}

Report* Report::active() noexcept { return g_report.get(); }

Report::Report(std::string figure, const mutil::Config& cfg)
    : figure_(std::move(figure)),
      dir_(cfg.get_string("bench_dir", ".")),
      trace_(cfg.get_bool("trace", false)) {}

Report::~Report() { write(); }

void Report::add_run(const RunLabel& label, const Outcome& outcome,
                     const stats::Collector& collector) {
  Point point;
  point.label = label;
  if (point.label.text().empty()) {
    point.label.app = "run" + std::to_string(points_.size());
  }
  point.outcome = outcome;
  point.stats_json = collector.summary().json();
  if (trace_) trace_writer_.add_run(collector, point.label.text());
  points_.push_back(std::move(point));
}

void Report::set_flag(const std::string& name, bool value) {
  flags_[name] = value;
}

void Report::add_table(const std::string& title,
                       const std::vector<std::string>& columns,
                       const std::vector<std::vector<std::string>>& rows) {
  tables_.push_back({title, columns, rows});
}

std::string Report::bench_json() const {
  using stats::jsonlite::escape;
  std::string out = "{\"figure\":\"" + escape(figure_) + "\",\"schema\":2";
  // Run-level flags for baseline hygiene: committed perf baselines must
  // come from analyzer-free runs (bench_diff.py --require race_checked=
  // false enforces it in CI).
  const check::JobChecker* checker = check::global_checker();
  const bool race_checked = checker != nullptr && checker->race() != nullptr;
  out += ",\"flags\":{\"race_checked\":";
  out += race_checked ? "true" : "false";
  for (const auto& [name, value] : flags_) {
    if (name == "race_checked") continue;  // derived above, not settable
    out += ",\"" + escape(name) + "\":";
    out += value ? "true" : "false";
  }
  out += "}";
  out += ",\"points\":[";
  for (std::size_t i = 0; i < points_.size(); ++i) {
    const Point& p = points_[i];
    if (i != 0) out += ",";
    out += "{\"app\":\"" + escape(p.label.app) + "\"";
    out += ",\"x\":\"" + escape(p.label.x) + "\"";
    out += ",\"series\":\"" + escape(p.label.series) + "\"";
    out += ",\"status\":\"";
    out += p.outcome.status_name();
    out += "\"";
    out += ",\"sim_time\":" + json_double(p.outcome.time);
    out += ",\"node_peak\":" + std::to_string(p.outcome.peak);
    out += ",\"shuffle_bytes\":" + std::to_string(p.outcome.shuffled);
    if (!p.outcome.detail.empty()) {
      out += ",\"detail\":\"" + escape(p.outcome.detail) + "\"";
    }
    if (p.outcome.profile != nullptr) {
      // Balance-relevant point metrics, surfaced for bench_diff.py:
      // the worst single rank's memory high-water and the receive-volume
      // imbalance (max over mean of per-rank received bytes).
      out += ",\"rank_peak\":" +
             std::to_string(p.outcome.profile->memory_peak_max);
      out += ",\"imbalance_ratio\":" +
             json_double(p.outcome.profile->recv_imbalance);
    }
    out += ",\"stats\":" + p.stats_json;
    out += "}";
  }
  out += "],\"tables\":[";
  for (std::size_t t = 0; t < tables_.size(); ++t) {
    const CapturedTable& table = tables_[t];
    if (t != 0) out += ",";
    out += "{\"title\":\"" + escape(table.title) + "\",\"columns\":[";
    for (std::size_t c = 0; c < table.columns.size(); ++c) {
      if (c != 0) out += ",";
      out += "\"" + escape(table.columns[c]) + "\"";
    }
    out += "],\"rows\":[";
    for (std::size_t r = 0; r < table.rows.size(); ++r) {
      if (r != 0) out += ",";
      out += "[";
      for (std::size_t c = 0; c < table.rows[r].size(); ++c) {
        if (c != 0) out += ",";
        out += "\"" + escape(table.rows[r][c]) + "\"";
      }
      out += "]";
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

void Report::write() {
  if (written_) return;
  written_ = true;
  auto emit = [&](const std::string& name, const std::string& body) {
    const std::string path = dir_ + "/" + name;
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
      return;
    }
    std::fwrite(body.data(), 1, body.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
  };
  emit("BENCH_" + figure_ + ".json", bench_json());
  if (trace_ && !trace_writer_.empty()) {
    emit("TRACE_" + figure_ + ".json", trace_writer_.json());
  }
}

std::string paper_size(std::uint64_t scaled_bytes) {
  return mutil::format_size(scaled_bytes * 1024);
}

Table::Table(std::string figure, std::string caption,
             std::vector<std::string> columns)
    : columns_(std::move(columns)),
      figure_(std::move(figure)),
      caption_(std::move(caption)) {
  widths_.resize(columns_.size());
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    widths_[i] = columns_[i].size();
  }
}

void Table::row(const std::vector<std::string>& cells) {
  rows_.push_back(cells);
  for (std::size_t i = 0; i < cells.size() && i < widths_.size(); ++i) {
    widths_[i] = std::max(widths_[i], cells[i].size());
  }
}

std::string Table::mem_cell(const Outcome& o) {
  if (!o.ok() && o.status != Outcome::Status::kSpilled) return "-";
  return mutil::format_size(o.peak);
}

std::string Table::time_cell(const Outcome& o) {
  if (o.status == Outcome::Status::kOom ||
      o.status == Outcome::Status::kError) {
    return "-";
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fs%s", o.time,
                o.status == Outcome::Status::kSpilled ? "*" : "");
  return buf;
}

Table::~Table() {
  std::printf("\n=== %s ===\n%s\n", figure_.c_str(), caption_.c_str());
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      std::printf("%-*s  ", static_cast<int>(widths_[i]), cells[i].c_str());
    }
    std::printf("\n");
  };
  print_row(columns_);
  std::vector<std::string> rule;
  rule.reserve(columns_.size());
  for (const std::size_t w : widths_) rule.emplace_back(w, '-');
  print_row(rule);
  for (const auto& cells : rows_) print_row(cells);
  std::printf(
      "('-' = cannot run in memory; '*' = spilled to the parallel file "
      "system; sizes labelled at paper scale, 1024x ours)\n");
  if (Report* report = Report::active()) {
    report->add_table(figure_, columns_, rows_);
  }
}

mutil::Config parse_cli(int argc, char** argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    if (std::strchr(argv[i], '=') != nullptr) args.emplace_back(argv[i]);
  }
  auto cfg = mutil::Config::from_args(args);
  if (cfg.contains("mimir.log_level")) {
    mutil::set_log_level(
        mutil::parse_log_level(cfg.get_string("mimir.log_level", "warn")));
  }
  if (cfg.get_bool("mimir.check", false) || cfg.get_bool("mimir.race", false)) {
    check::enable_global(check::CheckConfig::from(cfg));
  }
  return cfg;
}

bool quick_mode(const mutil::Config& cfg) {
  return !cfg.get_bool("full", false);
}

}  // namespace bench
