#include "harness.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>

#include "mutil/error.hpp"

namespace bench {

const char* Outcome::status_name() const {
  switch (status) {
    case Status::kOk: return "ok";
    case Status::kSpilled: return "spill";
    case Status::kOom: return "oom";
    case Status::kError: return "err";
  }
  return "?";
}

Outcome run_config(int nranks, const simtime::MachineProfile& machine,
                   pfs::FileSystem& fs, const BenchFn& fn) {
  Outcome outcome;
  std::atomic<bool> spilled{false};
  try {
    const auto stats =
        simmpi::run(nranks, machine, fs, [&](simmpi::Context& ctx) {
          if (fn(ctx)) spilled.store(true, std::memory_order_relaxed);
        });
    outcome.time = stats.sim_time;
    outcome.peak = stats.node_peak;
    outcome.shuffled = stats.shuffle_bytes;
    outcome.status =
        spilled.load() ? Outcome::Status::kSpilled : Outcome::Status::kOk;
  } catch (const mutil::OutOfMemoryError& e) {
    outcome.status = Outcome::Status::kOom;
    outcome.detail = e.what();
  } catch (const mutil::Error& e) {
    outcome.status = Outcome::Status::kError;
    outcome.detail = e.what();
  }
  return outcome;
}

std::string paper_size(std::uint64_t scaled_bytes) {
  return mutil::format_size(scaled_bytes * 1024);
}

Table::Table(std::string figure, std::string caption,
             std::vector<std::string> columns)
    : columns_(std::move(columns)),
      figure_(std::move(figure)),
      caption_(std::move(caption)) {
  widths_.resize(columns_.size());
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    widths_[i] = columns_[i].size();
  }
}

void Table::row(const std::vector<std::string>& cells) {
  rows_.push_back(cells);
  for (std::size_t i = 0; i < cells.size() && i < widths_.size(); ++i) {
    widths_[i] = std::max(widths_[i], cells[i].size());
  }
}

std::string Table::mem_cell(const Outcome& o) {
  if (!o.ok() && o.status != Outcome::Status::kSpilled) return "-";
  return mutil::format_size(o.peak);
}

std::string Table::time_cell(const Outcome& o) {
  if (o.status == Outcome::Status::kOom ||
      o.status == Outcome::Status::kError) {
    return "-";
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fs%s", o.time,
                o.status == Outcome::Status::kSpilled ? "*" : "");
  return buf;
}

Table::~Table() {
  std::printf("\n=== %s ===\n%s\n", figure_.c_str(), caption_.c_str());
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      std::printf("%-*s  ", static_cast<int>(widths_[i]), cells[i].c_str());
    }
    std::printf("\n");
  };
  print_row(columns_);
  std::vector<std::string> rule;
  rule.reserve(columns_.size());
  for (const std::size_t w : widths_) rule.emplace_back(w, '-');
  print_row(rule);
  for (const auto& cells : rows_) print_row(cells);
  std::printf(
      "('-' = cannot run in memory; '*' = spilled to the parallel file "
      "system; sizes labelled at paper scale, 1024x ours)\n");
}

mutil::Config parse_cli(int argc, char** argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    if (std::strchr(argv[i], '=') != nullptr) args.emplace_back(argv[i]);
  }
  return mutil::Config::from_args(args);
}

bool quick_mode(const mutil::Config& cfg) {
  return !cfg.get_bool("full", false);
}

}  // namespace bench
