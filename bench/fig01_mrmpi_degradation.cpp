// Figure 1: single-node execution time of WordCount with MR-MPI on
// Comet. The paper shows ~3 orders of magnitude degradation once the
// dataset no longer fits MR-MPI's pages and the framework spills to the
// shared parallel file system (datasets > 4 GB on a 128 GB node).
//
// Usage: ./fig01_mrmpi_degradation [full=1] [key=value ...]
#include "harness.hpp"
#include "workloads.hpp"

int main(int argc, char** argv) {
  const auto cfg = bench::parse_cli(argc, argv);
  bench::Report::init("fig01", cfg);
  auto machine = simtime::MachineProfile::comet_sim();
  machine.apply_overrides(cfg);
  const int ranks = machine.ranks_per_node;  // one node
  pfs::FileSystem fs(machine, ranks);

  std::vector<std::uint64_t> sizes = {1 << 20, 2 << 20, 4 << 20,
                                      8 << 20, 16 << 20};
  if (!bench::quick_mode(cfg)) {
    sizes.push_back(32 << 20);
    sizes.push_back(64 << 20);
  }

  // The paper's MR-MPI run uses large pages so small datasets stay in
  // memory; 512K scaled = the 512 MB maximum page on Comet.
  const auto mr = bench::FrameworkConfig::mrmpi("MR-MPI (512M)", 512 << 10);

  bench::Table table(
      "Figure 1",
      "Single-node execution time of WordCount with MR-MPI on comet_sim.\n"
      "Expected shape: flat while in memory, then orders-of-magnitude\n"
      "degradation once the dataset spills to the parallel file system.",
      {"dataset", "time", "status", "peak_mem"});
  for (const std::uint64_t size : sizes) {
    const auto outcome = bench::run_point(bench::App::kWcUniform, size, mr,
                                          ranks, machine, fs);
    table.row({bench::paper_size(size), bench::Table::time_cell(outcome),
               outcome.status_name(), bench::Table::mem_cell(outcome)});
  }
  return 0;
}
