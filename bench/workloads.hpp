// Workload dispatch shared by the figure benches: every figure sweeps
// {benchmark x size x framework-config}, so the mapping from those
// coordinates to a runnable job lives here once.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "harness.hpp"

namespace bench {

enum class App { kWcUniform, kWcWikipedia, kOc, kBfs };

const char* app_name(App app);

/// x-axis label for an app point (paper-scale for WC sizes, 2^k for
/// OC points / BFS vertices).
std::string x_label(App app, std::uint64_t x);

struct FrameworkConfig {
  enum class Fw { kMimir, kMrMpi };
  Fw fw = Fw::kMimir;
  std::string label;
  std::uint64_t page_size = 64 << 10;
  std::uint64_t comm_buffer = 64 << 10;
  bool hint = false;
  bool pr = false;
  bool cps = false;

  static FrameworkConfig mimir(std::string label, bool hint = false,
                               bool pr = false, bool cps = false);
  static FrameworkConfig mrmpi(std::string label, std::uint64_t page,
                               bool cps = false);
};

/// Run one (app, x, config) point. `x` is total input bytes for WC,
/// point count for OC, and log2(vertices) for BFS. WC inputs are
/// generated into `fs` on first use and cached by size.
Outcome run_point(App app, std::uint64_t x, const FrameworkConfig& fc,
                  int nranks, const simtime::MachineProfile& machine,
                  pfs::FileSystem& fs, std::uint64_t seed = 1);

}  // namespace bench
