// Workload dispatch shared by the figure benches: every figure sweeps
// {benchmark x size x framework-config}, so the mapping from those
// coordinates to a runnable job lives here once.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "harness.hpp"

namespace bench {

enum class App { kWcUniform, kWcWikipedia, kOc, kBfs };

const char* app_name(App app);

/// x-axis label for an app point (paper-scale for WC sizes, 2^k for
/// OC points / BFS vertices).
std::string x_label(App app, std::uint64_t x);

struct FrameworkConfig {
  enum class Fw { kMimir, kMrMpi };
  Fw fw = Fw::kMimir;
  std::string label;
  std::uint64_t page_size = 64 << 10;
  std::uint64_t comm_buffer = 64 << 10;
  bool hint = false;
  bool pr = false;
  bool cps = false;

  static FrameworkConfig mimir(std::string label, bool hint = false,
                               bool pr = false, bool cps = false);
  static FrameworkConfig mrmpi(std::string label, std::uint64_t page,
                               bool cps = false);
};

/// Run one (app, x, config) point. `x` is total input bytes for WC,
/// point count for OC, and log2(vertices) for BFS. WC inputs are
/// generated into `fs` on first use and cached by size.
Outcome run_point(App app, std::uint64_t x, const FrameworkConfig& fc,
                  int nranks, const simtime::MachineProfile& machine,
                  pfs::FileSystem& fs, std::uint64_t seed = 1);

/// Directed power-law graph with configurable skew, shared by the
/// pagerank/bfs benches: destination vertices are drawn from a Zipf
/// distribution over a popularity permutation of the vertex ids (so the
/// hot vertices are scattered across the id space, i.e. across hash
/// owners), sources uniformly. `skew` is the Zipf exponent — 0 gives a
/// uniform random graph, ~1 and above concentrates in-degree on a few
/// vertices. Deterministic in (nvertices, nedges, skew, seed).
std::shared_ptr<const std::vector<std::pair<std::uint64_t, std::uint64_t>>>
power_law_edges(std::uint64_t nvertices, std::uint64_t nedges, double skew,
                std::uint64_t seed);

}  // namespace bench
