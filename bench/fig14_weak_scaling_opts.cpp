// Figure 14: weak scalability of Mimir's optimization stack on Mira
// (paper: up to 1,024 nodes / 16,384 cores).
//
// Expected shapes (paper §IV-D):
//   * the baseline runs out of memory beyond ~2 nodes on skewed data
//     (load imbalance concentrates intermediate KVs on a few ranks);
//   * +hint widens the range (WC Uniform and BFS reach the far end);
//   * +pr widens WC (Wikipedia) and OC a little;
//   * only +cps takes WC (Wikipedia) and OC to large node counts.
//
// Thread-count note: the paper's 16 ranks/node are reduced to 1 rank
// per simulated node, with per-node dataset and memory shrunk by the
// same factor, preserving per-rank ratios; default sweeps stop at 32
// nodes (256 with full=1, nodes_max=N to override).
//
// Usage: ./fig14_weak_scaling_opts [full=1] [nodes_max=N] [key=value ...]
#include "harness.hpp"
#include "workloads.hpp"

int main(int argc, char** argv) {
  const auto cfg = bench::parse_cli(argc, argv);
  bench::Report::init("fig14", cfg);
  auto machine = simtime::MachineProfile::mira_sim();
  const int paper_rpn = machine.ranks_per_node;
  constexpr int kRpn = 1;
  const auto factor = static_cast<std::uint64_t>(paper_rpn / kRpn);
  machine.ranks_per_node = kRpn;
  machine.node_memory /= factor;
  machine.apply_overrides(cfg);

  const int max_nodes = static_cast<int>(
      cfg.get_int("nodes_max", bench::quick_mode(cfg) ? 32 : 256));
  std::vector<int> node_counts;
  for (int n = 2; n <= max_nodes; n *= 2) node_counts.push_back(n);

  const std::vector<bench::FrameworkConfig> wc_oc_configs = {
      bench::FrameworkConfig::mimir("Mimir"),
      bench::FrameworkConfig::mimir("hint", true),
      bench::FrameworkConfig::mimir("hint;pr", true, true),
      bench::FrameworkConfig::mimir("hint;pr;cps", true, true, true),
  };
  const std::vector<bench::FrameworkConfig> bfs_configs = {
      bench::FrameworkConfig::mimir("Mimir"),
      bench::FrameworkConfig::mimir("hint", true),
      bench::FrameworkConfig::mimir("hint;cps", true, false, true),
  };

  struct Workload {
    bench::App app;
    std::uint64_t per_node;  ///< bytes (WC), points (OC), verts (BFS)
    const std::vector<bench::FrameworkConfig>* configs;
  };
  // Paper/node: WC 2 GB, OC 2^27 points, BFS 2^22 vertices; scaled by
  // 1/1024 and then by the ranks-per-node factor.
  const Workload workloads[] = {
      {bench::App::kWcUniform, (2 << 20) / factor, &wc_oc_configs},
      {bench::App::kWcWikipedia, (2 << 20) / factor, &wc_oc_configs},
      {bench::App::kOc, (1 << 17) / factor, &wc_oc_configs},
      {bench::App::kBfs, (1 << 12) / factor, &bfs_configs},
  };

  for (const auto& w : workloads) {
    std::vector<std::string> columns{"nodes"};
    for (const auto& fc : *w.configs) columns.push_back(fc.label + " time");
    bench::Table table(
        std::string("Figure 14 — ") + bench::app_name(w.app),
        "Weak scaling of Mimir optimizations on mira_sim.",
        columns);
    for (const int nodes : node_counts) {
      pfs::FileSystem fs(machine, nodes * kRpn);
      std::vector<std::string> cells{std::to_string(nodes)};
      for (const auto& fc : *w.configs) {
        std::uint64_t x = w.per_node * static_cast<std::uint64_t>(nodes);
        if (w.app == bench::App::kBfs) {
          // x is log2(total vertices) for BFS.
          std::uint64_t total = w.per_node * static_cast<std::uint64_t>(nodes);
          x = 0;
          while ((1ull << x) < total) ++x;
        }
        const auto outcome = bench::run_point(w.app, x, fc, nodes * kRpn,
                                              machine, fs);
        cells.push_back(bench::Table::time_cell(outcome));
      }
      table.row(cells);
    }
  }
  return 0;
}
