// Extension: Mimir out-of-core intermediate data (follow-up-work
// feature; the paper's Mimir simply cannot run once the node memory is
// exhausted).
//
// Sweep WordCount sizes past the node budget on one comet_sim node:
//   * Mimir            — fast until the budget, then "-" (OOM);
//   * Mimir (ooc)      — keeps running past the boundary by spilling the
//                        intermediate container, degrading gradually;
//   * MR-MPI (512M)    — the baseline's out-of-core path for reference.
//
// Expected: Mimir (ooc) extends the feasible range beyond in-memory
// Mimir and degrades far less violently than MR-MPI, because only the
// overflow portion spills (one write + one read) instead of every phase
// rereading everything.
//
// Usage: ./ext_mimir_ooc [full=1] [key=value ...]
#include "apps/wordcount.hpp"
#include "harness.hpp"
#include "mimir/job.hpp"

int main(int argc, char** argv) {
  const auto cfg = bench::parse_cli(argc, argv);
  bench::Report::init("ext_mimir_ooc", cfg);
  auto machine = simtime::MachineProfile::comet_sim();
  // A deliberately small node so the boundary sits early in the sweep.
  machine.node_memory = 16 << 20;
  machine.apply_overrides(cfg);
  const int ranks = machine.ranks_per_node;

  std::vector<std::uint64_t> sizes = {1 << 20, 2 << 20, 4 << 20, 8 << 20};
  if (!bench::quick_mode(cfg)) sizes.push_back(16 << 20);

  bench::Table table(
      "Extension — Mimir out-of-core",
      "WordCount (Uniform) on a 16 GB-equivalent comet_sim node.\n"
      "Mimir (ooc) bounds live intermediate bytes per rank and spills\n"
      "the rest; expected shape: it runs past Mimir's OOM boundary with\n"
      "graceful (not catastrophic) slowdown.",
      {"dataset", "Mimir mem", "Mimir time", "Mimir(ooc) mem",
       "Mimir(ooc) time", "MR-MPI(64M) mem", "MR-MPI(64M) time"});

  pfs::FileSystem fs(machine, ranks);
  for (const std::uint64_t size : sizes) {
    apps::wc::GenOptions gen;
    gen.total_bytes = size;
    gen.num_files = ranks;
    const std::string prefix = "wc-" + std::to_string(size);
    const auto files = apps::wc::generate_uniform(fs, prefix, gen);

    const auto run_mimir = [&](std::uint64_t ooc) {
      return bench::run_config(
          ranks, machine, fs, [&](simmpi::Context& ctx) {
            mimir::JobConfig jc;
            jc.ooc_live_bytes = ooc;
            mimir::Job job(ctx, jc);
            job.map_text_files(files, apps::wc::map_words);
            const bool spilled = job.intermediate().spilled();
            job.reduce(apps::wc::reduce_counts);
            return spilled;
          });
    };
    const auto plain = run_mimir(0);
    // Budget the live intermediate at ~1/4 of each rank's memory share.
    const auto ooc = run_mimir(machine.node_memory /
                               static_cast<std::uint64_t>(4 * ranks));

    apps::wc::RunOptions mr_opts;
    mr_opts.files = files;
    mr_opts.page_size = 64 << 10;
    const auto mrmpi = bench::run_config(
        ranks, machine, fs, [&](simmpi::Context& ctx) {
          return apps::wc::run_mrmpi(ctx, mr_opts).spilled;
        });

    table.row({bench::paper_size(size), bench::Table::mem_cell(plain),
               bench::Table::time_cell(plain), bench::Table::mem_cell(ooc),
               bench::Table::time_cell(ooc), bench::Table::mem_cell(mrmpi),
               bench::Table::time_cell(mrmpi)});
  }
  return 0;
}
