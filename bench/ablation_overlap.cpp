// Ablation: the overlapped (double-buffered, non-blocking) shuffle vs
// the blocking exchange. Both modes ship identical bytes in identical
// rounds — results are bit-identical by construction (test-enforced in
// tests/core/test_shuffle_overlap.cpp) — so the only thing that moves
// is where communication time goes: blocked wait inside the aggregate
// phase for the blocking exchange, vs time hidden behind the map's own
// compute (the "hidden" column) for the overlapped one. The Zipf
// wordcount keeps the partitions skewed, which is where a blocking
// exchange waits the longest on the fattest partition.
//
// Usage: ./ablation_overlap [key=value ...]
#include <cstdio>
#include <string>

#include "apps/pagerank.hpp"
#include "apps/wordcount.hpp"
#include "harness.hpp"

namespace {

std::string seconds_cell(const bench::Outcome& outcome, bool hidden) {
  if (!outcome.ok() || outcome.profile == nullptr) return "-";
  const auto it = outcome.profile->phase_attr.find("aggregate");
  if (it == outcome.profile->phase_attr.end()) return "-";
  const double seconds =
      hidden ? it->second.overlap_seconds : it->second.wait_seconds;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4fs", seconds);
  return buf;
}

const char* mode_name(bool overlap) {
  return overlap ? "overlapped" : "blocking";
}

}  // namespace

int main(int argc, char** argv) {
  const auto cfg = bench::parse_cli(argc, argv);
  bench::Report::init("ablation_overlap", cfg);
  if (bench::Report* report = bench::Report::active()) {
    report->set_flag("overlap", true);
  }
  auto machine = simtime::MachineProfile::comet_sim();
  machine.ranks_per_node = 4;
  machine.apply_overrides(cfg);
  const int ranks = machine.ranks_per_node;
  const std::uint64_t dataset = cfg.get_size("size", 512 << 10);
  const std::uint64_t comm_buffer = cfg.get_size("comm_buffer", 8 << 10);

  pfs::FileSystem fs(machine, ranks);
  apps::wc::GenOptions gen;
  gen.total_bytes = dataset;
  gen.num_files = ranks;
  const auto files = apps::wc::generate_wikipedia(fs, "wc", gen);

  const std::vector<std::string> columns = {
      "size",          "blocking wait",   "blocking mem",
      "blocking time", "overlapped wait", "overlapped hidden",
      "overlapped mem", "overlapped time"};
  const std::string caption =
      "Blocking vs double-buffered non-blocking exchange. Expected:\n"
      "identical results, lower aggregate-phase blocked wait for the\n"
      "overlapped mode, the difference showing up as hidden\n"
      "(compute-covered) seconds.";

  {
    bench::Table table("Ablation — overlapped shuffle, WC (Zipf)",
                       caption, columns);
    const std::string x = mutil::format_size(dataset);
    bench::Outcome outcomes[2];
    for (const bool overlap : {false, true}) {
      outcomes[overlap ? 1 : 0] = bench::run_config(
          ranks, machine, fs,
          [&](simmpi::Context& ctx) {
            apps::wc::RunOptions opts;
            opts.files = files;
            opts.page_size = 64 << 10;
            opts.comm_buffer = comm_buffer;
            opts.overlap = overlap;
            (void)apps::wc::run_mimir(ctx, opts);
            return false;
          },
          {"WC (Zipf)", x, mode_name(overlap)});
    }
    table.row({x, seconds_cell(outcomes[0], false),
               bench::Table::mem_cell(outcomes[0]),
               bench::Table::time_cell(outcomes[0]),
               seconds_cell(outcomes[1], false),
               seconds_cell(outcomes[1], true),
               bench::Table::mem_cell(outcomes[1]),
               bench::Table::time_cell(outcomes[1])});
  }

  {
    bench::Table table("Ablation — overlapped shuffle, PageRank", caption,
                       columns);
    const std::string x = "2^10";
    bench::Outcome outcomes[2];
    for (const bool overlap : {false, true}) {
      outcomes[overlap ? 1 : 0] = bench::run_config(
          ranks, machine, fs,
          [&](simmpi::Context& ctx) {
            apps::pr::RunOptions opts;
            opts.scale = 10;
            opts.edge_factor = 8;
            opts.iterations = 3;
            opts.page_size = 64 << 10;
            opts.comm_buffer = comm_buffer;
            opts.overlap = overlap;
            (void)apps::pr::run_mimir(ctx, opts);
            return false;
          },
          {"PageRank", x, mode_name(overlap)});
    }
    table.row({x, seconds_cell(outcomes[0], false),
               bench::Table::mem_cell(outcomes[0]),
               bench::Table::time_cell(outcomes[0]),
               seconds_cell(outcomes[1], false),
               seconds_cell(outcomes[1], true),
               bench::Table::mem_cell(outcomes[1]),
               bench::Table::time_cell(outcomes[1])});
  }
  return 0;
}
