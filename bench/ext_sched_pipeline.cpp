// Extension: the dataflow scheduler on a multi-job in-situ pipeline
// (not in the paper; the paper's pipelines are hand-rolled job loops).
//
// The workload is S independent two-stage chains — an in-situ histogram
// whose output container feeds a coarse-bands reduction over a data
// edge — the insitu_pipeline example at bench scale. Three drivers run
// the identical jobs:
//
//   manual loop:    the hand-rolled sequence of mimir::Job runs every
//                   iterative app in this repo used before src/sched;
//   sched seq:      the same chains as a sched::Graph, max_concurrency
//                   1 (must match the manual loop exactly — the
//                   scheduler's overhead is zero by construction);
//   sched conc:     max_concurrency 4 under a global memory budget —
//                   independent chains run concurrently over disjoint
//                   rank groups, trading per-chain parallelism for
//                   pipeline-level parallelism.
//
// Expected shape: sched seq reproduces the manual wall time bit for
// bit; sched conc finishes the pipeline faster (less per-job barrier
// latency headroom wasted) while the admission budget keeps the
// concurrent peak bounded.
//
// Usage: ./ext_sched_pipeline [full=1] [key=value ...]
#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "harness.hpp"
#include "mutil/hash.hpp"
#include "sched/scheduler.hpp"

namespace {

constexpr int kBins = 256;
constexpr int kRanks = 8;
constexpr std::uint64_t kParticles = 1 << 16;

void sum_u64(std::string_view, std::string_view a, std::string_view b,
             std::string& out) {
  out.assign(mimir::as_view(mimir::as_u64(a) + mimir::as_u64(b)));
}

double particle_energy(int step, std::uint64_t i) {
  const std::uint64_t h = mutil::mix64(
      static_cast<std::uint64_t>(step) * 0x9e3779b97f4a7c15ull + i);
  const double u =
      static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
  return -std::log(1.0 - u);
}

mimir::JobConfig stage_config() {
  mimir::JobConfig cfg;
  cfg.hint = mimir::KVHint::fixed(8, 8);
  cfg.kv_compression = true;
  return cfg;
}

void emit_particles(int step, int rank, int size, mimir::Emitter& out) {
  for (std::uint64_t i = static_cast<std::uint64_t>(rank); i < kParticles;
       i += static_cast<std::uint64_t>(size)) {
    const auto bin = static_cast<std::uint64_t>(std::min<double>(
        kBins - 1, particle_energy(step, i) * 32.0));
    out.emit(mimir::as_view(bin), std::uint64_t{1});
  }
}

void band_map(std::string_view bin, std::string_view count,
              mimir::Emitter& out) {
  out.emit(mimir::as_view(mimir::as_u64(bin) / 64), count);
}

/// The hand-rolled baseline: chains run back to back on the world.
simmpi::JobStats manual_loop(int steps,
                             const simtime::MachineProfile& machine,
                             stats::Collector* collector) {
  pfs::FileSystem fs(machine, kRanks);
  return simmpi::run(
      kRanks, machine, fs,
      [&](simmpi::Context& ctx) {
        for (int step = 0; step < steps; ++step) {
          mimir::Job histogram(ctx, stage_config());
          histogram.map_custom(
              [&](mimir::Emitter& out) {
                emit_particles(step, ctx.rank(), ctx.size(), out);
              },
              sum_u64);
          histogram.partial_reduce(sum_u64);

          mimir::Job bands(ctx, stage_config());
          bands.map_kvs(histogram.take_output(), band_map, sum_u64);
          bands.partial_reduce(sum_u64);
        }
      },
      collector);
}

sched::Graph pipeline_graph(int steps) {
  sched::Graph graph;
  for (int step = 0; step < steps; ++step) {
    sched::JobNode hist;
    hist.name = "hist" + std::to_string(step);
    hist.config = stage_config();
    hist.combiner = sum_u64;
    hist.partial = sum_u64;
    // Honest per-node admission estimate: pages plus the comm buffers
    // both stages keep live, with headroom for the handed-off output.
    hist.peak_estimate = 1 << 20;
    hist.producer = [step](sched::NodeCtx& nctx, mimir::Emitter& out) {
      emit_particles(step, nctx.exec.rank(), nctx.exec.size(), out);
    };

    sched::JobNode bands;
    bands.name = "bands" + std::to_string(step);
    bands.config = stage_config();
    bands.combiner = sum_u64;
    bands.partial = sum_u64;
    bands.peak_estimate = 1 << 20;
    bands.kv_map = [](sched::NodeCtx&, std::string_view bin,
                      std::string_view count, mimir::Emitter& out) {
      band_map(bin, count, out);
    };

    const int h = graph.add(hist);
    const int b = graph.add(bands);
    graph.add_edge(h, b);
  }
  return graph;
}

std::string seconds(double t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4fs", t);
  return buf;
}

std::string mebibytes(std::uint64_t bytes) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fMB",
                static_cast<double>(bytes) / (1 << 20));
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const auto cli = bench::parse_cli(argc, argv);
  bench::Report::init("ext_sched", cli);
  auto machine = simtime::MachineProfile::comet_sim();
  machine.apply_overrides(cli);
  const std::uint64_t budget = 8 << 20;

  std::vector<int> sweep = {4};
  if (!bench::quick_mode(cli)) sweep.push_back(8);

  bench::Table table(
      "Extension — dataflow scheduler vs manual job loop",
      "S independent histogram->bands chains (in-situ pipeline). The\n"
      "sequential scheduler must match the manual loop exactly; with\n"
      "concurrency 4 the chains run over disjoint rank groups under an\n"
      "8MB admission budget. Peak is max per-node memory.",
      {"chains", "manual mem", "manual time", "sched seq mem",
       "sched seq time", "sched c4 mem", "sched c4 time", "speedup"});

  for (const int steps : sweep) {
    const std::string x = std::to_string(steps);
    const bench::Outcome manual = bench::run_driver(
        [&](stats::Collector* collector) {
          return manual_loop(steps, machine, collector);
        },
        {"dataflow scheduler", x, "manual"});

    const bench::Outcome seq = bench::run_driver(
        [&](stats::Collector* collector) {
          pfs::FileSystem fs(machine, kRanks);
          return sched::run_graph(kRanks, machine, fs,
                                  pipeline_graph(steps), {}, collector)
              .stats;
        },
        {"dataflow scheduler", x, "sched seq"});

    const bench::Outcome conc = bench::run_driver(
        [&](stats::Collector* collector) {
          pfs::FileSystem fs(machine, kRanks);
          sched::GraphOptions options;
          options.max_concurrency = 4;
          options.memory_budget = budget;
          return sched::run_graph(kRanks, machine, fs,
                                  pipeline_graph(steps), options,
                                  collector)
              .stats;
        },
        {"dataflow scheduler", x, "sched c4"});

    if (!manual.ok() || !seq.ok() || !conc.ok()) {
      table.row({x, "-", "-", "-", "-", "-", "-", "ERR"});
      return 1;
    }
    if (seq.time != manual.time) {
      table.row({x, seconds(manual.time), "-", seconds(seq.time), "-",
                 "-", "-", "NOT BIT-IDENTICAL"});
      return 1;
    }
    if (conc.peak > budget) {
      table.row({x, "-", "-", "-", "-", seconds(conc.time),
                 mebibytes(conc.peak), "OVER BUDGET"});
      return 1;
    }
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.2fx",
                  manual.time / conc.time);
    table.row({x, bench::Table::mem_cell(manual),
               bench::Table::time_cell(manual),
               bench::Table::mem_cell(seq), bench::Table::time_cell(seq),
               bench::Table::mem_cell(conc),
               bench::Table::time_cell(conc), speedup});
  }
  return 0;
}
