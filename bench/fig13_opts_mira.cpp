// Figure 13: impact of stacking Mimir's optional optimizations on one
// Mira node: baseline -> +KV-hint -> +partial-reduction -> +compression.
//
// Expected shapes (paper §IV-D):
//   * each added optimization lowers peak memory for WC and OC, growing
//     the in-memory dataset range up to 4x over baseline;
//   * BFS supports hint (memory drop) but not pr; cps does not change
//     its peak (partitioning-phase dominated).
//
// Usage: ./fig13_opts_mira [full=1] [key=value ...]
#include "fig_baseline.hpp"

int main(int argc, char** argv) {
  const auto cfg = bench::parse_cli(argc, argv);
  bench::Report::init("fig13", cfg);
  auto machine = simtime::MachineProfile::mira_sim();
  machine.apply_overrides(cfg);
  const bool quick = bench::quick_mode(cfg);

  const std::vector<bench::FrameworkConfig> wc_oc_configs = {
      bench::FrameworkConfig::mimir("Mimir"),
      bench::FrameworkConfig::mimir("Mimir(hint)", true),
      bench::FrameworkConfig::mimir("Mimir(hint;pr)", true, true),
      bench::FrameworkConfig::mimir("Mimir(hint;pr;cps)", true, true, true),
  };
  // The BFS algorithm does not support partial reduction (paper §IV-D).
  const std::vector<bench::FrameworkConfig> bfs_configs = {
      bench::FrameworkConfig::mimir("Mimir"),
      bench::FrameworkConfig::mimir("Mimir(hint)", true),
      bench::FrameworkConfig::mimir("Mimir(hint;cps)", true, false, true),
  };

  bench::run_figure(
      "Figure 13",
      "Mimir optional optimizations, one mira_sim node (WC, OC).",
      machine,
      {{bench::App::kWcUniform, bench::ladder(256 << 10, quick ? 4 : 6)},
       {bench::App::kWcWikipedia, bench::ladder(256 << 10, quick ? 4 : 6)},
       {bench::App::kOc, bench::ladder(1 << 14, quick ? 4 : 6)}},
      wc_oc_configs);
  bench::run_figure(
      "Figure 13",
      "Mimir optional optimizations, one mira_sim node (BFS; no pr).",
      machine, {{bench::App::kBfs, bench::scales(8, quick ? 4 : 6)}},
      bfs_configs);
  return 0;
}
