// Ablation: the async I/O pipeline (pfs.prefetch) vs blocking I/O.
// Both modes issue identical PFS operations in identical order —
// results, intermediate placement, and checkpoint bytes are
// bit-identical by construction (test-enforced in
// tests/core/test_job_prefetch.cpp) — so the only thing that moves is
// where the I/O cost goes: exposed stall inside the map phase for
// blocking reads, vs cost hidden under the map's own compute (the
// "hidden" column) for the read-ahead pipeline. WordCount reads its
// input over the Comet-scaled Lustre link (read-ahead showcase); the
// octree runs out of core with a tight live-bytes bound, so its spill
// writes drain through the write-behind queue.
//
// Usage: ./ablation_io [key=value ...]
#include <cstdio>
#include <string>

#include "apps/octree.hpp"
#include "apps/wordcount.hpp"
#include "harness.hpp"

namespace {

std::string io_seconds(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4fs", seconds);
  return buf;
}

/// Map-phase I/O attribution: exposed stall or compute-covered cost.
std::string map_io_cell(const bench::Outcome& outcome, bool hidden) {
  if (!outcome.ok() || outcome.profile == nullptr) return "-";
  const auto it = outcome.profile->phase_attr.find("map");
  if (it == outcome.profile->phase_attr.end()) return "-";
  return io_seconds(hidden ? it->second.io_hidden_seconds
                           : it->second.io_wait_seconds);
}

/// Whole-run rank-summed I/O attribution (the octree spills from every
/// level's phase, so the per-phase view undersells it).
std::string total_io_cell(const bench::Outcome& outcome, bool hidden) {
  if (!outcome.ok() || outcome.profile == nullptr) return "-";
  return io_seconds(hidden ? outcome.profile->io_hidden_total
                           : outcome.profile->io_wait_total);
}

const char* mode_name(bool prefetch) {
  return prefetch ? "prefetch" : "blocking";
}

}  // namespace

int main(int argc, char** argv) {
  const auto cfg = bench::parse_cli(argc, argv);
  bench::Report::init("ablation_io", cfg);
  if (bench::Report* report = bench::Report::active()) {
    report->set_flag("prefetch", true);
  }
  auto machine = simtime::MachineProfile::comet_sim();
  machine.ranks_per_node = 4;
  machine.apply_overrides(cfg);
  const int ranks = machine.ranks_per_node;
  const std::uint64_t dataset = cfg.get_size("size", 2 << 20);

  pfs::FileSystem fs(machine, ranks);
  apps::wc::GenOptions gen;
  gen.total_bytes = dataset;
  gen.num_files = ranks;
  const auto files = apps::wc::generate_wikipedia(fs, "wc", gen);

  const std::vector<std::string> columns = {
      "size",          "blocking io wait", "blocking mem",
      "blocking time", "prefetch io wait", "prefetch hidden",
      "prefetch mem",  "prefetch time"};
  const std::string caption =
      "Blocking vs asynchronous (read-ahead / write-behind) PFS I/O.\n"
      "Expected: identical results, lower exposed I/O wait with\n"
      "prefetch on, the difference showing up as hidden\n"
      "(compute-covered) seconds.";

  {
    bench::Table table("Ablation — async I/O, WC (Zipf) read-ahead",
                       caption, columns);
    const std::string x = mutil::format_size(dataset);
    bench::Outcome outcomes[2];
    for (const bool prefetch : {false, true}) {
      outcomes[prefetch ? 1 : 0] = bench::run_config(
          ranks, machine, fs,
          [&](simmpi::Context& ctx) {
            apps::wc::RunOptions opts;
            opts.files = files;
            opts.page_size = 64 << 10;
            opts.prefetch = prefetch;
            (void)apps::wc::run_mimir(ctx, opts);
            return false;
          },
          {"WC (Zipf)", x, mode_name(prefetch)});
    }
    table.row({x, map_io_cell(outcomes[0], false),
               bench::Table::mem_cell(outcomes[0]),
               bench::Table::time_cell(outcomes[0]),
               map_io_cell(outcomes[1], false),
               map_io_cell(outcomes[1], true),
               bench::Table::mem_cell(outcomes[1]),
               bench::Table::time_cell(outcomes[1])});
  }

  {
    bench::Table table("Ablation — async I/O, octree OOC write-behind",
                       caption, columns);
    const std::string x = "2^14";
    bench::Outcome outcomes[2];
    for (const bool prefetch : {false, true}) {
      outcomes[prefetch ? 1 : 0] = bench::run_config(
          ranks, machine, fs,
          [&](simmpi::Context& ctx) {
            apps::oc::RunOptions opts;
            opts.num_points = 1 << 14;
            opts.page_size = 8 << 10;
            opts.comm_buffer = 8 << 10;
            opts.ooc_live_bytes = 32 << 10;  // force the spill path
            opts.prefetch = prefetch;
            (void)apps::oc::run_mimir(ctx, opts);
            return false;
          },
          {"Octree", x, mode_name(prefetch)});
    }
    table.row({x, total_io_cell(outcomes[0], false),
               bench::Table::mem_cell(outcomes[0]),
               bench::Table::time_cell(outcomes[0]),
               total_io_cell(outcomes[1], false),
               total_io_cell(outcomes[1], true),
               bench::Table::mem_cell(outcomes[1]),
               bench::Table::time_cell(outcomes[1])});
  }
  return 0;
}
