// Figure 8: peak memory usage and execution time on one Comet node —
// baseline Mimir vs MR-MPI with 64 MB and 512 MB pages (scaled: 64 KB /
// 512 KB pages, 128 MB node memory).
//
// Expected shapes (paper §IV-B):
//   * Mimir uses >= 25 % less memory than MR-MPI (64M) while both fit;
//   * MR-MPI (64M) leaves memory at ~512 MB datasets, MR-MPI (512M) at
//     ~4 GB; Mimir runs up to 16 GB in memory (4x the best MR-MPI);
//   * in-memory execution times are comparable.
//
// Usage: ./fig08_comet_baseline [full=1] [key=value ...]
#include "fig_baseline.hpp"

int main(int argc, char** argv) {
  const auto cfg = bench::parse_cli(argc, argv);
  bench::Report::init("fig08", cfg);
  auto machine = simtime::MachineProfile::comet_sim();
  machine.apply_overrides(cfg);
  const bool quick = bench::quick_mode(cfg);

  const std::vector<bench::FrameworkConfig> configs = {
      bench::FrameworkConfig::mimir("Mimir"),
      bench::FrameworkConfig::mrmpi("MR-MPI(64M)", 64 << 10),
      bench::FrameworkConfig::mrmpi("MR-MPI(512M)", 512 << 10),
  };

  // Paper x-axes scaled 1/1024: WC 256M..16G -> 256K..16M,
  // OC 2^24..2^30 -> 2^14..2^20 points, BFS 2^19..2^26 -> 2^9..2^16.
  std::vector<bench::Sweep> sweeps = {
      {bench::App::kWcUniform, bench::ladder(256 << 10, quick ? 5 : 7)},
      {bench::App::kWcWikipedia, bench::ladder(256 << 10, quick ? 5 : 7)},
      {bench::App::kOc, bench::ladder(1 << 14, quick ? 5 : 7)},
      {bench::App::kBfs, bench::scales(9, quick ? 5 : 8)},
  };

  bench::run_figure(
      "Figure 8",
      "Peak memory usage and execution time on one comet_sim node.",
      machine, sweeps, configs);
  return 0;
}
