// Micro-benchmarks for the simmpi substrate: collective rendezvous
// costs (wall clock, not simulated time) across rank counts.
#include <benchmark/benchmark.h>

#include "simmpi/runtime.hpp"

namespace {

void BM_JobSpawn(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    simmpi::run_test(ranks, [](simmpi::Context&) {});
  }
}
BENCHMARK(BM_JobSpawn)->Arg(2)->Arg(8)->Arg(32);

void BM_Barrier(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const int iters = 200;
  for (auto _ : state) {
    simmpi::run_test(ranks, [&](simmpi::Context& ctx) {
      for (int i = 0; i < iters; ++i) ctx.comm.barrier();
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          iters);
}
BENCHMARK(BM_Barrier)->Arg(2)->Arg(8)->Arg(32);

void BM_Alltoallv(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const std::uint64_t block = 4096;
  for (auto _ : state) {
    simmpi::run_test(ranks, [&](simmpi::Context& ctx) {
      const auto p = static_cast<std::uint64_t>(ctx.size());
      std::vector<std::byte> send(block * p), recv(block * p);
      std::vector<std::uint64_t> counts(p, block), displs(p);
      for (std::uint64_t i = 0; i < p; ++i) displs[i] = i * block;
      for (int round = 0; round < 20; ++round) {
        ctx.comm.alltoallv(send, counts, displs, recv, counts, displs);
      }
    });
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          20 * block * state.range(0) * state.range(0));
}
BENCHMARK(BM_Alltoallv)->Arg(2)->Arg(8)->Arg(16);

void BM_Allreduce(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    simmpi::run_test(ranks, [&](simmpi::Context& ctx) {
      std::uint64_t acc = 0;
      for (int i = 0; i < 200; ++i) {
        acc ^= ctx.comm.allreduce_u64(static_cast<std::uint64_t>(i),
                                      simmpi::Op::kSum);
      }
      benchmark::DoNotOptimize(acc);
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          200);
}
BENCHMARK(BM_Allreduce)->Arg(2)->Arg(8)->Arg(32);

}  // namespace

BENCHMARK_MAIN();
