// Figure 11: effect of KV compression on one Comet node. Series: Mimir,
// Mimir (cps), MR-MPI (512M pages), MR-MPI (512M, cps).
//
// Expected shapes (paper §IV-C):
//   * Mimir (cps) has the lowest peak memory for WC and OC and extends
//     the in-memory range beyond baseline Mimir;
//   * BFS peak memory is unchanged by cps (the peak is in the graph
//     partitioning phase);
//   * MR-MPI's peak memory is unchanged by compression — fixed pages —
//     so its in-memory range does not grow.
//
// Usage: ./fig11_cps_comet [full=1] [key=value ...]
#include "fig_baseline.hpp"

int main(int argc, char** argv) {
  const auto cfg = bench::parse_cli(argc, argv);
  bench::Report::init("fig11", cfg);
  auto machine = simtime::MachineProfile::comet_sim();
  machine.apply_overrides(cfg);
  const bool quick = bench::quick_mode(cfg);

  const std::vector<bench::FrameworkConfig> configs = {
      bench::FrameworkConfig::mimir("Mimir"),
      bench::FrameworkConfig::mimir("Mimir(cps)", false, false, true),
      bench::FrameworkConfig::mrmpi("MR-MPI", 512 << 10),
      bench::FrameworkConfig::mrmpi("MR-MPI(cps)", 512 << 10, true),
  };

  // Paper: WC 512M..64G -> 512K..64M, OC 2^25..2^32 -> 2^15..2^22,
  // BFS 2^20..2^26 -> 2^10..2^16.
  std::vector<bench::Sweep> sweeps = {
      {bench::App::kWcUniform, bench::ladder(512 << 10, quick ? 4 : 8)},
      {bench::App::kWcWikipedia, bench::ladder(512 << 10, quick ? 4 : 8)},
      {bench::App::kOc, bench::ladder(1 << 15, quick ? 4 : 7)},
      {bench::App::kBfs, bench::scales(10, quick ? 4 : 7)},
  };

  bench::run_figure("Figure 11",
                    "Performance of KV compression on one comet_sim node.",
                    machine, sweeps, configs);
  return 0;
}
