// Figure 9: peak memory usage and execution time on one Mira (BG/Q)
// node — baseline Mimir vs MR-MPI with 64 MB and 128 MB pages (scaled:
// 64 KB / 128 KB pages, 16 MB node memory).
//
// Expected shapes (paper §IV-B): same trends as Comet with at least a
// 40 % memory gain and 4x larger in-memory datasets for Mimir. The
// paper skipped MR-MPI (128M) for OC and BFS because it runs out of
// memory; our sweep shows the same as missing points.
//
// Usage: ./fig09_mira_baseline [full=1] [key=value ...]
#include "fig_baseline.hpp"

int main(int argc, char** argv) {
  const auto cfg = bench::parse_cli(argc, argv);
  bench::Report::init("fig09", cfg);
  auto machine = simtime::MachineProfile::mira_sim();
  machine.apply_overrides(cfg);
  const bool quick = bench::quick_mode(cfg);

  const std::vector<bench::FrameworkConfig> configs = {
      bench::FrameworkConfig::mimir("Mimir"),
      bench::FrameworkConfig::mrmpi("MR-MPI(64M)", 64 << 10),
      bench::FrameworkConfig::mrmpi("MR-MPI(128M)", 128 << 10),
  };

  // Paper x-axes scaled 1/1024: WC 64M..2G -> 64K..2M,
  // OC 2^22..2^27 -> 2^12..2^17 points, BFS 2^18..2^22 -> 2^8..2^12.
  std::vector<bench::Sweep> sweeps = {
      {bench::App::kWcUniform, bench::ladder(64 << 10, quick ? 4 : 6)},
      {bench::App::kWcWikipedia, bench::ladder(64 << 10, quick ? 4 : 6)},
      {bench::App::kOc, bench::ladder(1 << 12, quick ? 4 : 6)},
      {bench::App::kBfs, bench::scales(8, quick ? 4 : 5)},
  };

  bench::run_figure(
      "Figure 9",
      "Peak memory usage and execution time on one mira_sim node.",
      machine, sweeps, configs);
  return 0;
}
