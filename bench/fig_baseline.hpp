// Shared sweep for Figures 8/9 (single-node baseline comparison) and
// Figures 11/12 (KV-compression comparison): one table per benchmark,
// rows = dataset sizes, columns = (peak memory, time) per framework
// configuration.
#pragma once

#include <string>
#include <vector>

#include "harness.hpp"
#include "workloads.hpp"

namespace bench {

struct Sweep {
  App app;
  std::vector<std::uint64_t> xs;  ///< bytes (WC), points (OC), scale (BFS)
};

inline void run_figure(const std::string& figure,
                       const std::string& caption,
                       const simtime::MachineProfile& machine,
                       const std::vector<Sweep>& sweeps,
                       const std::vector<FrameworkConfig>& configs) {
  const int ranks = machine.ranks_per_node;  // single node
  for (const Sweep& sweep : sweeps) {
    pfs::FileSystem fs(machine, ranks);
    std::vector<std::string> columns{"x"};
    for (const auto& fc : configs) {
      columns.push_back(fc.label + " mem");
      columns.push_back(fc.label + " time");
    }
    Table table(figure + " — " + app_name(sweep.app), caption, columns);
    for (const std::uint64_t x : sweep.xs) {
      std::vector<std::string> cells{x_label(sweep.app, x)};
      for (const auto& fc : configs) {
        const Outcome outcome =
            run_point(sweep.app, x, fc, ranks, machine, fs);
        cells.push_back(Table::mem_cell(outcome));
        cells.push_back(Table::time_cell(outcome));
      }
      table.row(cells);
    }
  }
}

/// Geometric size ladder a, 2a, 4a, ... (n points).
inline std::vector<std::uint64_t> ladder(std::uint64_t first, int n) {
  std::vector<std::uint64_t> xs;
  for (int i = 0; i < n; ++i) xs.push_back(first << i);
  return xs;
}

/// Linear ladder for BFS scales: s, s+1, ..., s+n-1.
inline std::vector<std::uint64_t> scales(std::uint64_t first, int n) {
  std::vector<std::uint64_t> xs;
  for (int i = 0; i < n; ++i) xs.push_back(first + static_cast<std::uint64_t>(i));
  return xs;
}

}  // namespace bench
