// Figure 7: intermediate KV size of WordCount on the Wikipedia dataset,
// with and without the KV-hint optimization. The paper reports the hint
// saving ~26 % of KV bytes (the value header disappears and the key's
// length field is replaced by a NUL terminator).
//
// Usage: ./fig07_kvhint_size [full=1] [key=value ...]
#include <cstdio>

#include "apps/wordcount.hpp"
#include "harness.hpp"

int main(int argc, char** argv) {
  const auto cfg = bench::parse_cli(argc, argv);
  bench::Report::init("fig07", cfg);
  auto machine = simtime::MachineProfile::comet_sim();
  machine.apply_overrides(cfg);
  const int ranks = machine.ranks_per_node;
  pfs::FileSystem fs(machine, ranks);

  std::vector<std::uint64_t> sizes = {1 << 20, 2 << 20, 4 << 20};
  if (!bench::quick_mode(cfg)) {
    sizes = {8 << 20, 16 << 20, 32 << 20};
  }

  bench::Table table(
      "Figure 7",
      "KV size of WordCount with the Wikipedia dataset, with and without\n"
      "the KV-hint. Expected shape: the hinted KVs are ~26% smaller.",
      {"dataset", "KV size", "KV size (hint)", "saving"});

  for (const std::uint64_t size : sizes) {
    apps::wc::GenOptions gen;
    gen.total_bytes = size;
    gen.num_files = ranks;
    const auto files =
        apps::wc::generate_wikipedia(fs, "wiki-" + std::to_string(size),
                                     gen);
    std::uint64_t bytes[2] = {0, 0};
    for (const bool hint : {false, true}) {
      simmpi::run(ranks, machine, fs, [&](simmpi::Context& ctx) {
        mimir::JobConfig jc;
        if (hint) jc.hint = mimir::KVHint::string_key_u64_value();
        mimir::Job job(ctx, jc);
        job.map_text_files(files, apps::wc::map_words);
        const auto total = ctx.comm.allreduce_u64(
            job.metrics().intermediate_bytes, simmpi::Op::kSum);
        if (ctx.rank() == 0) bytes[hint ? 1 : 0] = total;
      });
    }
    char saving[32];
    std::snprintf(saving, sizeof(saving), "%.1f%%",
                  100.0 * (1.0 - static_cast<double>(bytes[1]) /
                                     static_cast<double>(bytes[0])));
    table.row({bench::paper_size(size), mutil::format_size(bytes[0]),
               mutil::format_size(bytes[1]), saving});
  }
  return 0;
}
