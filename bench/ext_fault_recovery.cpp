// Extension: fault injection and checkpoint-based recovery (not in the
// paper; the paper's Mimir, like MR-MPI, simply dies with the job when a
// rank or the PFS misbehaves).
//
// Sweep the transient-PFS-error rate on a WordCount-style job run
// through mimir::run_with_recovery with a checkpoint after map. Each
// rate reports how many attempts the job needed, how much simulated
// backoff it accumulated, the total simulated time-to-completion, and
// whether the final output is bit-identical to the undisturbed (rate 0)
// run — the acceptance bar: recovery must change availability, never
// results.
//
// Expected shape: attempts and completion time grow with the error rate
// while "correct" stays yes; at 1% per-op errors the job still finishes
// with the right answer inside the retry budget.
//
// Usage: ./ext_fault_recovery [full=1] [key=value ...]
#include <algorithm>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "harness.hpp"
#include "inject/fault.hpp"
#include "mimir/recovery.hpp"
#include "mrmpi/mrmpi.hpp"
#include "mrmpi/retry.hpp"

namespace {

/// Whole-job output collected across ranks, keyed by rank and
/// overwritten per attempt so retries never double-count.
struct Sink {
  std::mutex mutex;
  std::map<int, std::map<std::string, std::uint64_t>> by_rank;

  void take(mimir::Job& job) {
    std::map<std::string, std::uint64_t> mine;
    job.output().scan([&](const mimir::KVView& kv) {
      mine[std::string(kv.key)] += mimir::as_u64(kv.value);
    });
    const std::scoped_lock lock(mutex);
    by_rank[job.context().rank()] = std::move(mine);
  }
  std::map<std::string, std::uint64_t> merged() const {
    std::map<std::string, std::uint64_t> all;
    for (const auto& [rank, kvs] : by_rank) {
      for (const auto& [key, value] : kvs) all[key] += value;
    }
    return all;
  }
};

std::string seconds(double t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3fs", t);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const auto cfg = bench::parse_cli(argc, argv);
  bench::Report::init("ext_fault_recovery", cfg);
  auto machine = simtime::MachineProfile::comet_sim();
  machine.apply_overrides(cfg);
  // A sub-node job: every PFS op is a fault-injection point, and the
  // per-attempt op count scales with ranks, so the width sets which
  // error rates the retry budget can beat (8 ranks ~ 25 ops/attempt:
  // survivable up to ~8% per-op errors; a full 24-rank node pushes past
  // 70 ops and percent-level rates become a wall).
  const int ranks = std::min(8, machine.ranks_per_node);

  std::vector<double> rates = {0.0, 0.01, 0.05};
  if (!bench::quick_mode(cfg)) rates.push_back(0.08);

  bench::Table table(
      "Extension — fault injection + recovery",
      "Synthetic WordCount under transient PFS errors, run through\n"
      "run_with_recovery (checkpoint after map, exponential backoff on\n"
      "the simulated clock). Expected shape: attempts and completion\n"
      "time grow with the error rate; the output never changes.",
      {"pfs error rate", "attempts", "resumed", "backoff", "sim time",
       "correct"});

  mimir::RecoveryPolicy policy;
  policy.max_attempts = 25;

  std::map<std::string, std::uint64_t> reference;
  for (const double rate : rates) {
    pfs::FileSystem fs(machine, ranks);
    Sink sink;

    mimir::RecoveryJob spec;
    // The PFS traffic under fire is the recovery machinery itself: one
    // batched checkpoint write per rank plus the commit marker, and the
    // shard reads on resume. Roughly 25 ops per attempt on 24 ranks, so
    // at a 1% per-op error rate an attempt survives with probability
    // ~0.78 and the job completes well inside the retry budget — the
    // regime the recovery layer is built for. (Forcing the intermediate
    // out of core pushes this past 300 ops per attempt, where no retry
    // budget survives percent-level error rates.)
    spec.map = [ranks](mimir::Job& job) {
      const int rank = job.context().rank();
      job.map_custom([rank, ranks](mimir::Emitter& out) {
        const int emissions = 8000 / ranks;
        for (int i = 0; i < emissions; ++i) {
          out.emit("word" + std::to_string((i * 13 + rank) % 499),
                   std::uint64_t{1});
        }
      });
    };
    spec.finish = [&sink](mimir::Job& job) {
      job.partial_reduce([](std::string_view, std::string_view a,
                            std::string_view b, std::string& out) {
        out.assign(mimir::as_view(mimir::as_u64(a) + mimir::as_u64(b)));
      });
      // Persist each rank's output shard: post-checkpoint PFS traffic,
      // so a fault landing here makes the retry resume from the saved
      // intermediate instead of restarting the whole job.
      auto& ctx = job.context();
      std::string blob;
      job.output().scan([&](const mimir::KVView& kv) {
        blob.append(kv.key);
        blob.push_back('\t');
        blob.append(std::to_string(mimir::as_u64(kv.value)));
        blob.push_back('\n');
      });
      ctx.fs.write_file("out/r" + std::to_string(ctx.rank()), blob,
                        ctx.clock());
      sink.take(job);
    };

    inject::FaultPlan plan;
    plan.pfs_error_rate = rate;
    char rate_label[32];
    std::snprintf(rate_label, sizeof(rate_label), "%.3f%%", rate * 100.0);

    try {
      const mimir::RecoveryOutcome out = mimir::run_with_recovery(
          ranks, machine, fs, spec, policy, rate > 0.0 ? &plan : nullptr);
      if (rate == 0.0) reference = sink.merged();
      const bool correct = sink.merged() == reference;
      table.row({rate_label, std::to_string(out.attempts),
                 out.resumed ? "yes" : "no", seconds(out.total_backoff),
                 seconds(out.stats.sim_time), correct ? "yes" : "NO"});
      if (!correct) return 1;
    } catch (const mutil::Error& e) {
      table.row({rate_label, "-", "-", "-", "-",
                 std::string("ERR: ") + e.what()});
      return 1;
    }
  }

  // --- recovery overhead vs the restart-from-scratch baseline -----------
  //
  // The same job under rank/node crashes, handled two ways: Mimir's
  // checkpoint-based resume (the failed attempt's map survives) versus
  // the only recovery MR-MPI admits — re-submitting the whole job. The
  // overhead column is time-to-completion relative to each framework's
  // own fault-free run; the gap between the columns is what the
  // checkpoint machinery buys.
  bench::Table vs(
      "Extension — recovery overhead: checkpoint resume vs restart",
      "Identical WordCount on both frameworks under injected crashes.\n"
      "Mimir resumes from the post-map checkpoint; MR-MPI restarts from\n"
      "scratch (mrmpi::run_with_retry). Overhead is sim time over the\n"
      "fault-free run of the same framework.",
      {"fault", "Mimir attempts", "Mimir time", "Mimir ovh",
       "MR-MPI attempts", "MR-MPI time", "MR-MPI ovh", "correct"});

  struct FaultCase {
    const char* label;
    const char* spec;  ///< nullptr = fault-free baseline
  };
  const std::vector<FaultCase> faults = {
      {"none", nullptr},
      {"rank crash @reduce", "rank_crash:1@reduce"},
      {"2 crashes @reduce", "rank_crash:1@reduce#1,rank_crash:2@reduce#2"},
      {"node crash @reduce", "node_crash:0@reduce"},
  };

  const auto emit_words = [ranks](int rank, mimir::Emitter& out) {
    const int emissions = 8000 / ranks;
    for (int i = 0; i < emissions; ++i) {
      out.emit("word" + std::to_string((i * 13 + rank) % 499),
               std::uint64_t{1});
    }
  };
  const auto sum_reduce = [](std::string_view key,
                             mimir::ValueReader& values,
                             mimir::Emitter& out) {
    std::uint64_t total = 0;
    std::string_view v;
    while (values.next(v)) total += mimir::as_u64(v);
    out.emit(key, total);
  };

  double mimir_clean = 0.0, mrmpi_clean = 0.0;
  std::map<std::string, std::uint64_t> crossref;
  for (const FaultCase& fc : faults) {
    std::optional<inject::FaultPlan> fplan;
    if (fc.spec != nullptr) fplan = inject::FaultPlan::parse(fc.spec);

    // Mimir: checkpoint-based resume.
    Sink msink;
    mimir::RecoveryJob spec;
    spec.map = [&emit_words](mimir::Job& job) {
      const int rank = job.context().rank();
      job.map_custom(
          [&emit_words, rank](mimir::Emitter& out) { emit_words(rank, out); });
    };
    spec.finish = [&msink, &sum_reduce](mimir::Job& job) {
      job.reduce(sum_reduce);
      msink.take(job);
    };
    int mattempts = 0;
    pfs::FileSystem mfs(machine, ranks);
    const bench::Outcome mout = bench::run_driver(
        [&](stats::Collector* collector) {
          const mimir::RecoveryOutcome r = mimir::run_with_recovery(
              ranks, machine, mfs, spec, policy,
              fplan ? &*fplan : nullptr, collector);
          mattempts = r.attempts;
          return r.stats;
        },
        {"recovery overhead", fc.label, "Mimir resume"});

    // MR-MPI: restart from scratch.
    Sink rsink;
    int rattempts = 0;
    pfs::FileSystem rfs(machine, ranks);
    const bench::Outcome rout = bench::run_driver(
        [&](stats::Collector* collector) {
          const mrmpi::RetryOutcome r = mrmpi::run_with_retry(
              ranks, machine, rfs,
              [&](simmpi::Context& ctx) {
                mrmpi::MapReduce mr(ctx);
                mr.map_custom([&emit_words, &ctx](mimir::Emitter& out) {
                  emit_words(ctx.rank(), out);
                });
                mr.aggregate();
                mr.convert();
                mr.reduce(sum_reduce);
                std::map<std::string, std::uint64_t> mine;
                mr.scan_kv([&](const mimir::KVView& kv) {
                  mine[std::string(kv.key)] += mimir::as_u64(kv.value);
                });
                const std::scoped_lock lock(rsink.mutex);
                rsink.by_rank[ctx.rank()] = std::move(mine);
              },
              {}, fplan ? &*fplan : nullptr, collector);
          rattempts = r.attempts;
          return r.stats;
        },
        {"recovery overhead", fc.label, "MR-MPI restart"});

    if (!mout.ok() || !rout.ok()) {
      vs.row({fc.label, "-", "-", "-", "-", "-", "-",
              "ERR: " + (mout.ok() ? rout.detail : mout.detail)});
      return 1;
    }
    if (fc.spec == nullptr) {
      mimir_clean = mout.time;
      mrmpi_clean = rout.time;
      crossref = msink.merged();
      if (rsink.merged() != crossref) {
        vs.row({fc.label, "-", "-", "-", "-", "-", "-",
                "NO (frameworks disagree)"});
        return 1;
      }
    }
    const bool correct =
        msink.merged() == crossref && rsink.merged() == crossref;
    char movh[32], rovh[32];
    std::snprintf(movh, sizeof(movh), "%.2fx",
                  mimir_clean > 0 ? mout.time / mimir_clean : 1.0);
    std::snprintf(rovh, sizeof(rovh), "%.2fx",
                  mrmpi_clean > 0 ? rout.time / mrmpi_clean : 1.0);
    vs.row({fc.label, std::to_string(mattempts), seconds(mout.time), movh,
            std::to_string(rattempts), seconds(rout.time), rovh,
            correct ? "yes" : "NO"});
    if (!correct) return 1;
  }
  return 0;
}
