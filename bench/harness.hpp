// Shared harness for the per-figure benchmark binaries.
//
// Every bench binary regenerates one of the paper's figures as a table:
// one row per x-axis point, one column pair (peak memory, time) per
// series. Configurations that cannot run in memory print "-" exactly
// like the paper's missing data points, annotated with why (OOM = hit
// the node memory budget, SPILL = went out of core, ERR = framework
// limitation such as a KMV larger than a page).
//
// All sizes are scaled 1/1024 from the paper; labels show the
// paper-equivalent size (e.g. our 1 MB prints as "1G(sc)").
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "mutil/config.hpp"
#include "mutil/sizes.hpp"
#include "pfs/filesystem.hpp"
#include "simmpi/runtime.hpp"
#include "simtime/machine.hpp"

namespace bench {

struct Outcome {
  enum class Status { kOk, kSpilled, kOom, kError };
  Status status = Status::kOk;
  double time = 0.0;         ///< simulated seconds
  std::uint64_t peak = 0;    ///< max per-node peak memory, bytes
  std::uint64_t shuffled = 0;
  std::string detail;        ///< error text for kOom/kError

  bool ok() const { return status == Status::kOk; }
  const char* status_name() const;
};

/// The workload body; return true if the framework spilled to the PFS.
using BenchFn = std::function<bool(simmpi::Context&)>;

/// Run one configuration, translating OOM/usage errors into statuses.
Outcome run_config(int nranks, const simtime::MachineProfile& machine,
                   pfs::FileSystem& fs, const BenchFn& fn);

/// Scale helper: our bytes -> the paper's label (x1024), e.g. 1M -> "1G".
std::string paper_size(std::uint64_t scaled_bytes);

/// Fixed-width table printer.
class Table {
 public:
  Table(std::string figure, std::string caption,
        std::vector<std::string> columns);

  /// Print one row; use "-" cells for missing points.
  void row(const std::vector<std::string>& cells);

  /// Memory+time cell pair from an outcome ("3.2MB", "12.4s" or "-").
  static std::string mem_cell(const Outcome& o);
  static std::string time_cell(const Outcome& o);

  ~Table();

 private:
  std::vector<std::string> columns_;
  std::vector<std::size_t> widths_;
  std::vector<std::vector<std::string>> rows_;
  std::string figure_;
  std::string caption_;
};

/// Parse trailing key=value CLI arguments into a Config.
mutil::Config parse_cli(int argc, char** argv);

/// true unless "quick=0" / "full=1" style flags say otherwise; quick mode
/// trims the largest x-axis points so `ctest`-style sweeps stay fast.
bool quick_mode(const mutil::Config& cfg);

}  // namespace bench
