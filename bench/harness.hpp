// Shared harness for the per-figure benchmark binaries.
//
// Every bench binary regenerates one of the paper's figures as a table:
// one row per x-axis point, one column pair (peak memory, time) per
// series. Configurations that cannot run in memory print "-" exactly
// like the paper's missing data points, annotated with why (OOM = hit
// the node memory budget, SPILL = went out of core, ERR = framework
// limitation such as a KMV larger than a page).
//
// All sizes are scaled 1/1024 from the paper; labels show the
// paper-equivalent size (e.g. our 1 MB prints as "1G(sc)").
// Machine-readable output: call Report::init(figure, cfg) once in each
// binary's main. With stats=1 and/or trace=1 on the command line, every
// run is profiled through a stats::Collector and the process writes
// BENCH_<figure>.json (structured points + the printed tables) and,
// with trace=1, TRACE_<figure>.json (Chrome/Perfetto trace events, one
// process per run) into bench_dir (default "."). Without those flags
// the report stays inactive and the benches behave exactly as before.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "mutil/config.hpp"
#include "mutil/sizes.hpp"
#include "pfs/filesystem.hpp"
#include "simmpi/runtime.hpp"
#include "simtime/machine.hpp"
#include "stats/trace.hpp"

namespace bench {

struct Outcome {
  enum class Status { kOk, kSpilled, kOom, kError };
  Status status = Status::kOk;
  double time = 0.0;         ///< simulated seconds
  std::uint64_t peak = 0;    ///< max per-node peak memory, bytes
  std::uint64_t shuffled = 0;
  std::string detail;        ///< error text for kOom/kError
  /// Cross-rank stats aggregate; set only while a Report is active.
  std::shared_ptr<const stats::Summary> profile;

  bool ok() const { return status == Status::kOk; }
  const char* status_name() const;
};

/// The workload body; return true if the framework spilled to the PFS.
using BenchFn = std::function<bool(simmpi::Context&)>;

/// Sweep coordinates of one run, used to label report points and trace
/// processes. All fields optional; an unlabelled run is reported as
/// "run<N>".
struct RunLabel {
  std::string app;     ///< benchmark / table group, e.g. "WC (Uniform)"
  std::string x;       ///< x-axis label, e.g. "256M"
  std::string series;  ///< framework config label, e.g. "Mimir"

  std::string text() const;  ///< "app / x / series" (skipping empties)
};

/// Run one configuration, translating OOM/usage errors into statuses.
/// While a Report is active the run is profiled and recorded under
/// `label`.
Outcome run_config(int nranks, const simtime::MachineProfile& machine,
                   pfs::FileSystem& fs, const BenchFn& fn,
                   const RunLabel& label = {});

/// Body of one repetition; `rep` counts from 0. Return true on spill.
using RepeatFn = std::function<bool(simmpi::Context&, int rep)>;

/// Run `fn` `reps` times inside ONE simmpi::run, resetting every
/// peak-memory high-water mark (rank trackers and node budgets) between
/// the warm-up repetitions and the last one, so the reported peak and
/// time measure the final repetition alone. With reps == 1 this is
/// run_config. The reset is bracketed by barriers, so no rank is still
/// allocating while the marks move.
Outcome run_repeated(int nranks, const simtime::MachineProfile& machine,
                     pfs::FileSystem& fs, int reps, const RepeatFn& fn,
                     const RunLabel& label = {});

/// A driver that owns its own simmpi::run invocation (recovery loops,
/// sched::run_graph, multi-job pipelines). It receives the profiling
/// collector (nullptr while reporting is off) to pass through to its
/// runner and returns the stats it wants recorded. Spill reporting is
/// the driver's business — set Outcome::Status::kSpilled via the
/// returned stats' io fields only if it matters to the figure.
using DriverFn = std::function<simmpi::JobStats(stats::Collector*)>;

/// run_config for custom drivers: same error envelope and report point.
Outcome run_driver(const DriverFn& fn, const RunLabel& label = {});

/// Scale helper: our bytes -> the paper's label (x1024), e.g. 1M -> "1G".
std::string paper_size(std::uint64_t scaled_bytes);

/// Fixed-width table printer.
class Table {
 public:
  Table(std::string figure, std::string caption,
        std::vector<std::string> columns);

  /// Print one row; use "-" cells for missing points.
  void row(const std::vector<std::string>& cells);

  /// Memory+time cell pair from an outcome ("3.2MB", "12.4s" or "-").
  static std::string mem_cell(const Outcome& o);
  static std::string time_cell(const Outcome& o);

  ~Table();

 private:
  std::vector<std::string> columns_;
  std::vector<std::size_t> widths_;
  std::vector<std::vector<std::string>> rows_;
  std::string figure_;
  std::string caption_;
};

/// Process-wide machine-readable figure output (see file header).
class Report {
 public:
  /// Activate reporting for this process when `cfg` asks for it
  /// (stats=1 / trace=1); reads bench_dir= for the output directory.
  /// Files are written when the process exits.
  static void init(const std::string& figure, const mutil::Config& cfg);

  /// The active report, or nullptr when reporting is off.
  static Report* active() noexcept;

  bool trace_enabled() const noexcept { return trace_; }

  /// Record one profiled run (called by run_config).
  void add_run(const RunLabel& label, const Outcome& outcome,
               const stats::Collector& collector);

  /// Declare a run-level flag for the BENCH json "flags" object (e.g.
  /// overlap=true for figures exercising the non-blocking shuffle);
  /// bench_diff.py --require NAME=VALUE asserts them in CI.
  void set_flag(const std::string& name, bool value);

  /// Capture a printed table for round-trip checks (called by ~Table).
  void add_table(const std::string& title,
                 const std::vector<std::string>& columns,
                 const std::vector<std::vector<std::string>>& rows);

  /// Write BENCH_<figure>.json (and TRACE_<figure>.json with trace=1);
  /// called automatically at exit, idempotent.
  void write();

  ~Report();

 private:
  Report(std::string figure, const mutil::Config& cfg);

  struct Point {
    RunLabel label;
    Outcome outcome;
    std::string stats_json;  ///< Summary::json() of the run
  };
  struct CapturedTable {
    std::string title;
    std::vector<std::string> columns;
    std::vector<std::vector<std::string>> rows;
  };

  std::string bench_json() const;

  std::string figure_;
  std::string dir_;
  bool trace_ = false;
  bool written_ = false;
  std::map<std::string, bool> flags_;
  std::vector<Point> points_;
  std::vector<CapturedTable> tables_;
  stats::TraceWriter trace_writer_;
};

/// Parse trailing key=value CLI arguments into a Config; applies a
/// mimir.log_level=debug|info|warn|error override to the global logger.
mutil::Config parse_cli(int argc, char** argv);

/// true unless "quick=0" / "full=1" style flags say otherwise; quick mode
/// trims the largest x-axis points so `ctest`-style sweeps stay fast.
bool quick_mode(const mutil::Config& cfg);

}  // namespace bench
