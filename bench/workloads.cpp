#include "workloads.hpp"

#include "apps/bfs.hpp"
#include "apps/octree.hpp"
#include "apps/wordcount.hpp"
#include "mutil/error.hpp"
#include "mutil/random.hpp"

namespace bench {

const char* app_name(App app) {
  switch (app) {
    case App::kWcUniform: return "WC (Uniform)";
    case App::kWcWikipedia: return "WC (Wikipedia)";
    case App::kOc: return "OC";
    case App::kBfs: return "BFS";
  }
  return "?";
}

std::string x_label(App app, std::uint64_t x) {
  switch (app) {
    case App::kWcUniform:
    case App::kWcWikipedia:
      return paper_size(x);
    case App::kOc:
      // Our point counts are the paper's scaled by 1/1024 = 2^10.
      return mutil::format_pow2(x << 10);
    case App::kBfs:
      return mutil::format_pow2((1ull << x) << 10);
  }
  return "?";
}

FrameworkConfig FrameworkConfig::mimir(std::string label, bool hint,
                                       bool pr, bool cps) {
  FrameworkConfig fc;
  fc.fw = Fw::kMimir;
  fc.label = std::move(label);
  fc.hint = hint;
  fc.pr = pr;
  fc.cps = cps;
  return fc;
}

FrameworkConfig FrameworkConfig::mrmpi(std::string label,
                                       std::uint64_t page, bool cps) {
  FrameworkConfig fc;
  fc.fw = Fw::kMrMpi;
  fc.label = std::move(label);
  fc.page_size = page;
  fc.cps = cps;
  return fc;
}

namespace {

std::vector<std::string> wc_input(App app, std::uint64_t bytes, int nranks,
                                  pfs::FileSystem& fs, std::uint64_t seed) {
  const std::string prefix =
      std::string(app == App::kWcUniform ? "wc-uni-" : "wc-wiki-") +
      std::to_string(bytes);
  if (fs.exists(prefix + "/part0")) {
    std::vector<std::string> files;
    for (int f = 0; f < nranks; ++f) {
      files.push_back(prefix + "/part" + std::to_string(f));
    }
    return files;
  }
  apps::wc::GenOptions gen;
  gen.total_bytes = bytes;
  gen.num_files = nranks;
  gen.seed = seed;
  return app == App::kWcUniform
             ? apps::wc::generate_uniform(fs, prefix, gen)
             : apps::wc::generate_wikipedia(fs, prefix, gen);
}

}  // namespace

Outcome run_point(App app, std::uint64_t x, const FrameworkConfig& fc,
                  int nranks, const simtime::MachineProfile& machine,
                  pfs::FileSystem& fs, std::uint64_t seed) {
  const bool mrmpi = fc.fw == FrameworkConfig::Fw::kMrMpi;
  const RunLabel label{app_name(app), x_label(app, x), fc.label};
  switch (app) {
    case App::kWcUniform:
    case App::kWcWikipedia: {
      apps::wc::RunOptions opts;
      opts.files = wc_input(app, x, nranks, fs, seed);
      opts.page_size = fc.page_size;
      opts.comm_buffer = fc.comm_buffer;
      opts.hint = fc.hint;
      opts.pr = fc.pr;
      opts.cps = fc.cps;
      return run_config(
          nranks, machine, fs,
          [&](simmpi::Context& ctx) {
            if (mrmpi) return apps::wc::run_mrmpi(ctx, opts).spilled;
            return apps::wc::run_mimir(ctx, opts).spilled;
          },
          label);
    }
    case App::kOc: {
      apps::oc::RunOptions opts;
      opts.num_points = x;
      opts.seed = seed;
      opts.page_size = fc.page_size;
      opts.comm_buffer = fc.comm_buffer;
      opts.hint = fc.hint;
      opts.pr = fc.pr;
      opts.cps = fc.cps;
      return run_config(
          nranks, machine, fs,
          [&](simmpi::Context& ctx) {
            if (mrmpi) return apps::oc::run_mrmpi(ctx, opts).spilled;
            return apps::oc::run_mimir(ctx, opts).spilled;
          },
          label);
    }
    case App::kBfs: {
      apps::bfs::RunOptions opts;
      opts.scale = static_cast<int>(x);
      opts.seed = seed;
      opts.page_size = fc.page_size;
      opts.comm_buffer = fc.comm_buffer;
      opts.hint = fc.hint;
      opts.cps = fc.cps;
      return run_config(
          nranks, machine, fs,
          [&](simmpi::Context& ctx) {
            if (mrmpi) return apps::bfs::run_mrmpi(ctx, opts).spilled;
            return apps::bfs::run_mimir(ctx, opts).spilled;
          },
          label);
    }
  }
  return {};
}

std::shared_ptr<const std::vector<std::pair<std::uint64_t, std::uint64_t>>>
power_law_edges(std::uint64_t nvertices, std::uint64_t nedges, double skew,
                std::uint64_t seed) {
  if (nvertices == 0) {
    throw mutil::UsageError("power_law_edges: nvertices must be > 0");
  }
  mutil::Xoshiro256 rng(seed);
  // Popularity permutation: rank k of the Zipf distribution maps to a
  // pseudo-random vertex id, so hot destinations do not cluster on the
  // low ids (which would alias with any id-based partitioning).
  std::vector<std::uint64_t> perm(nvertices);
  for (std::uint64_t v = 0; v < nvertices; ++v) perm[v] = v;
  for (std::uint64_t v = nvertices - 1; v > 0; --v) {
    const std::uint64_t j = rng.below(v + 1);
    std::swap(perm[v], perm[j]);
  }
  const bool uniform = skew <= 0.0;
  const mutil::ZipfSampler zipf(nvertices, uniform ? 1.0 : skew);
  auto edges = std::make_shared<
      std::vector<std::pair<std::uint64_t, std::uint64_t>>>();
  edges->reserve(nedges);
  for (std::uint64_t e = 0; e < nedges; ++e) {
    const std::uint64_t u = rng.below(nvertices);
    const std::uint64_t v =
        uniform ? rng.below(nvertices) : perm[zipf.sample(rng)];
    edges->emplace_back(u, v);
  }
  return edges;
}

}  // namespace bench
