// Micro-benchmarks (google-benchmark) for the hot paths of the core
// library: KV encode/decode under each hint, container append/scan,
// combiner upserts, the convert pipeline, and dataset generators.
#include <benchmark/benchmark.h>

#include "mimir/mimir.hpp"
#include "mutil/hash.hpp"
#include "mutil/random.hpp"

namespace {

using mimir::KVCodec;
using mimir::KVHint;

void BM_CodecEncode(benchmark::State& state) {
  const KVCodec codec(state.range(0) == 0
                          ? KVHint::variable()
                          : KVHint::string_key_u64_value());
  const std::string key = "benchmark";
  const std::uint64_t value = 42;
  std::vector<std::byte> buf(64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        codec.encode(buf.data(), key, mimir::as_view(value)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CodecEncode)->Arg(0)->Arg(1);

void BM_CodecDecodeStream(benchmark::State& state) {
  const KVCodec codec{KVHint::variable()};
  std::vector<std::byte> buf;
  for (int i = 0; i < 1000; ++i) {
    const std::string key = "key" + std::to_string(i);
    const std::size_t old = buf.size();
    buf.resize(old + codec.encoded_size(key, "valuevalue"));
    codec.encode(buf.data() + old, key, "valuevalue");
  }
  for (auto _ : state) {
    std::size_t n = 0;
    codec.for_each(buf, [&](const mimir::KVView&) { ++n; });
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1000);
}
BENCHMARK(BM_CodecDecodeStream);

void BM_KvcAppend(benchmark::State& state) {
  memtrack::Tracker tracker;
  const std::string key = "some-word";
  const std::uint64_t one = 1;
  for (auto _ : state) {
    mimir::KVContainer kvc(tracker, 64 << 10);
    for (int i = 0; i < 1000; ++i) kvc.append(key, mimir::as_view(one));
    benchmark::DoNotOptimize(kvc.num_kvs());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1000);
}
BENCHMARK(BM_KvcAppend);

void BM_CombineUpsert(benchmark::State& state) {
  memtrack::Tracker tracker;
  const std::int64_t distinct = state.range(0);
  std::vector<std::string> keys;
  keys.reserve(static_cast<std::size_t>(distinct));
  for (std::int64_t i = 0; i < distinct; ++i) {
    keys.push_back("key" + std::to_string(i));
  }
  const auto combiner = [](std::string_view, std::string_view a,
                           std::string_view b, std::string& out) {
    const std::uint64_t total = mimir::as_u64(a) + mimir::as_u64(b);
    out.assign(mimir::as_view(total));
  };
  const std::uint64_t one = 1;
  std::size_t next = 0;
  mimir::CombineTable table(tracker, 64 << 10,
                            KVHint::string_key_u64_value(), combiner);
  for (auto _ : state) {
    table.upsert(keys[next], mimir::as_view(one));
    next = (next + 1) % keys.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CombineUpsert)->Arg(16)->Arg(4096)->Arg(1 << 16);

void BM_Convert(benchmark::State& state) {
  const std::int64_t kvs = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    auto machine = simtime::MachineProfile::test_profile();
    pfs::FileSystem fs(machine, 1);
    state.ResumeTiming();
    simmpi::run(1, machine, fs, [&](simmpi::Context& ctx) {
      mimir::KVContainer kvc(ctx.tracker, 64 << 10);
      for (std::int64_t i = 0; i < kvs; ++i) {
        kvc.append("key" + std::to_string(i % 97), "value");
      }
      auto kmvc = mimir::convert(ctx, kvc, 64 << 10);
      benchmark::DoNotOptimize(kmvc.num_kmvs());
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kvs);
}
BENCHMARK(BM_Convert)->Arg(1000)->Arg(10000);

void BM_ZipfSample(benchmark::State& state) {
  mutil::ZipfSampler zipf(1 << 20, 1.05);
  mutil::Xoshiro256 rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.sample(rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ZipfSample);

void BM_HashBytes(benchmark::State& state) {
  const std::string key(static_cast<std::size_t>(state.range(0)), 'k');
  for (auto _ : state) {
    benchmark::DoNotOptimize(mutil::hash_bytes(key));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_HashBytes)->Arg(8)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
