// Ablation (design decision 1, DESIGN.md): the interleaved map+aggregate
// decouples memory from input volume. Shrinking the communication
// buffer multiplies exchange rounds but leaves peak memory nearly flat
// and adds only the per-round latency — i.e. the buffer is a throughput
// knob, not a capacity limit. In MR-MPI the equivalent knob (the page)
// IS the capacity limit: shrinking it forces spilling.
//
// Usage: ./ablation_interleave [key=value ...]
#include <atomic>

#include "apps/wordcount.hpp"
#include "harness.hpp"
#include "mimir/job.hpp"

int main(int argc, char** argv) {
  const auto cfg = bench::parse_cli(argc, argv);
  bench::Report::init("ablation_interleave", cfg);
  auto machine = simtime::MachineProfile::comet_sim();
  machine.ranks_per_node = 4;
  machine.apply_overrides(cfg);
  const int ranks = machine.ranks_per_node;
  const std::uint64_t dataset = cfg.get_size("size", 512 << 10);

  pfs::FileSystem fs(machine, ranks);
  apps::wc::GenOptions gen;
  gen.total_bytes = dataset;
  gen.num_files = ranks;
  const auto files = apps::wc::generate_uniform(fs, "wc", gen);

  bench::Table table(
      "Ablation — interleaved aggregate",
      "Mimir with shrinking communication buffers on a fixed dataset.\n"
      "Expected: rounds grow ~1/buffer, peak memory barely moves, time\n"
      "rises only by collective latency.",
      {"comm buffer", "exchange rounds", "peak mem", "time"});

  for (const std::uint64_t buffer :
       {256u << 10, 64u << 10, 16u << 10, 4u << 10}) {
    std::atomic<std::uint64_t> rounds{0};
    const auto outcome = bench::run_config(
        ranks, machine, fs, [&](simmpi::Context& ctx) {
          mimir::JobConfig jc;
          jc.comm_buffer = buffer;
          mimir::Job job(ctx, jc);
          job.map_text_files(files, apps::wc::map_words);
          job.reduce(apps::wc::reduce_counts);
          if (ctx.rank() == 0) {
            rounds.store(job.metrics().exchange_rounds);
          }
          return false;
        });
    table.row({mutil::format_size(buffer), std::to_string(rounds.load()),
               bench::Table::mem_cell(outcome),
               bench::Table::time_cell(outcome)});
  }
  return 0;
}
